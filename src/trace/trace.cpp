#include "trace/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <utility>

#include "common/check.hpp"

namespace dcs::trace {

namespace {

/// Fixed-precision double formatting so writer output is byte-stable.
std::string fmt_f3(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

/// Nanoseconds rendered as microseconds with exactly 3 decimals (Chrome's
/// `ts`/`dur` unit is microseconds).
std::string ns_as_us(SimNanos t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03" PRIu64, t / 1000,
                t % 1000);
  return buf;
}

std::string json_escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    out.push_back(*s);
  }
  return out;
}

}  // namespace

// --- Registry ---

Registry& Registry::global() {
  // One registry per OS thread: instrumentation on a shard worker lands in
  // that worker's registry, which the sharded runner folds into the
  // coordinator's via merge() in deterministic partition order at teardown
  // (sim/shard.hpp).  Single-threaded programs see the old process-global.
  static thread_local Registry instance;
  return instance;
}

Registry::Metric& Registry::get(std::string_view name, Kind kind) {
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Metric metric;
    metric.kind = kind;
    it = metrics_.emplace(std::string(name), std::move(metric)).first;
  }
  DCS_CHECK_MSG(it->second.kind == kind,
                "metric registered twice with different kinds");
  return it->second;
}

Counter& Registry::counter(std::string_view name) {
  return get(name, Kind::kCounter).counter;
}
Gauge& Registry::gauge(std::string_view name) {
  return get(name, Kind::kGauge).gauge;
}
Distribution& Registry::distribution(std::string_view name) {
  return get(name, Kind::kDistribution).dist;
}
Histogram& Registry::histogram(std::string_view name) {
  return get(name, Kind::kHist).hist;
}

const Counter* Registry::find_counter(std::string_view name) const {
  const auto it = metrics_.find(name);
  return it != metrics_.end() && it->second.kind == Kind::kCounter
             ? &it->second.counter
             : nullptr;
}
const Gauge* Registry::find_gauge(std::string_view name) const {
  const auto it = metrics_.find(name);
  return it != metrics_.end() && it->second.kind == Kind::kGauge
             ? &it->second.gauge
             : nullptr;
}
const Distribution* Registry::find_distribution(std::string_view name) const {
  const auto it = metrics_.find(name);
  return it != metrics_.end() && it->second.kind == Kind::kDistribution
             ? &it->second.dist
             : nullptr;
}
const Histogram* Registry::find_histogram(std::string_view name) const {
  const auto it = metrics_.find(name);
  return it != metrics_.end() && it->second.kind == Kind::kHist
             ? &it->second.hist
             : nullptr;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(metrics_.size());
  for (const auto& [name, metric] : metrics_) out.push_back(name);
  return out;
}

void Registry::reset() {
  for (auto& [name, metric] : metrics_) {
    metric.counter = Counter{};
    metric.gauge = Gauge{};
    metric.dist = Distribution{};
    metric.hist = Histogram{};
  }
}

void Registry::merge(const Registry& other) {
  for (const auto& [name, theirs] : other.metrics_) {
    Metric& ours = get(name, theirs.kind);
    switch (theirs.kind) {
      case Kind::kCounter:
        ours.counter.value += theirs.counter.value;
        break;
      case Kind::kGauge:
        ours.gauge.value = theirs.gauge.value;
        break;
      case Kind::kDistribution:
        ours.dist.stat.merge(theirs.dist.stat);
        break;
      case Kind::kHist:
        for (std::size_t b = 0; b < LogHistogram::kBuckets; ++b) {
          const std::uint64_t n = theirs.hist.hist.bucket_count(b);
          // LogHistogram has no bucket-add; replay one representative value
          // per sample (lower bound of the bucket) which lands in the same
          // bucket by construction.
          const std::uint64_t lo = b == 0 ? 0 : (1ULL << (b - 1));
          for (std::uint64_t i = 0; i < n; ++i) ours.hist.hist.add(lo);
        }
        break;
    }
  }
}

void Registry::write(std::ostream& os) const {
  os << "# dcs metrics v1 (names: layer.component.metric; times in ns)\n";
  for (const auto& [name, metric] : metrics_) {
    switch (metric.kind) {
      case Kind::kCounter:
        os << "counter " << name << ' ' << metric.counter.value << '\n';
        break;
      case Kind::kGauge:
        os << "gauge " << name << ' ' << fmt_f3(metric.gauge.value) << '\n';
        break;
      case Kind::kDistribution: {
        const auto& s = metric.dist.stat;
        os << "distribution " << name << " count " << s.count() << " mean "
           << fmt_f3(s.mean()) << " min " << fmt_f3(s.min()) << " max "
           << fmt_f3(s.max()) << " stddev " << fmt_f3(s.stddev()) << '\n';
        break;
      }
      case Kind::kHist:
        os << "histogram " << name << " count " << metric.hist.hist.count();
        for (std::size_t b = 0; b < LogHistogram::kBuckets; ++b) {
          const std::uint64_t n = metric.hist.hist.bucket_count(b);
          if (n == 0) continue;
          const std::uint64_t lo = b == 0 ? 0 : (1ULL << (b - 1));
          const std::uint64_t hi = 1ULL << b;
          os << " [" << lo << ',' << hi << "):" << n;
        }
        os << '\n';
        break;
    }
  }
}

void Registry::write_json(std::ostream& os) const {
  os << '{';
  bool first = true;
  for (const auto& [name, metric] : metrics_) {
    os << (first ? "" : ", ") << '"' << name << "\": ";
    first = false;
    switch (metric.kind) {
      case Kind::kCounter:
        os << metric.counter.value;
        break;
      case Kind::kGauge:
        os << fmt_f3(metric.gauge.value);
        break;
      case Kind::kDistribution:
        os << "{\"count\": " << metric.dist.stat.count()
           << ", \"mean\": " << fmt_f3(metric.dist.stat.mean()) << '}';
        break;
      case Kind::kHist:
        os << "{\"count\": " << metric.hist.hist.count() << '}';
        break;
    }
  }
  os << '}';
}

// --- Tracer ---

const char* to_string(Cost c) {
  switch (c) {
    case Cost::kNone: return "none";
    case Cost::kHostCpu: return "host-cpu";
    case Cost::kNic: return "nic";
    case Cost::kWire: return "wire";
    case Cost::kQueueing: return "queueing";
    case Cost::kCreditStall: return "credit-stall";
    case Cost::kLockWait: return "lock-wait";
  }
  return "?";
}

Tracer::~Tracer() { uninstall(); }

void Tracer::install() {
  auto& s = detail::sinks();
  DCS_CHECK_MSG(s.tracer == nullptr || s.tracer == this,
                "another tracer is already installed");
  s.tracer = this;
  s.any = true;
}

void Tracer::uninstall() {
  auto& s = detail::sinks();
  if (s.tracer == this) {
    s.tracer = nullptr;
    s.any = s.flight != nullptr;
  }
}

void Tracer::instant(const char* category, const char* name,
                     std::uint32_t node, std::uint64_t id,
                     const char* detail) {
  TraceEvent ev;
  ev.category = category;
  ev.name = name;
  ev.detail = detail;
  ev.id = id;
  ev.start = eng_.now();
  ev.end = eng_.now();
  ev.request = sim::strand_ctx().request;
  ev.node = node;
  ev.phase = 'i';
  events_.push_back(ev);
}

void Tracer::complete(const char* category, const char* name,
                      std::uint32_t node, std::uint64_t id,
                      const char* detail, sim::Time start, sim::Time end) {
  TraceEvent ev;
  ev.category = category;
  ev.name = name;
  ev.detail = detail;
  ev.id = id;
  ev.start = start;
  ev.end = end;
  ev.node = node;
  ev.phase = 'X';
  events_.push_back(ev);
}

void Tracer::record(const TraceEvent& ev) {
  // A zero-length cost interval cannot influence attribution; skip it so
  // contention-free fast paths (uncontended run queue, available credits)
  // do not double the event volume.
  if (ev.cost != Cost::kNone && ev.end == ev.start) return;
  events_.push_back(ev);
}

void Tracer::write_chrome_json(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& line) {
    os << (first ? "\n" : ",\n") << line;
    first = false;
  };

  // Metadata: pid = simulated node, tid = category (first-seen order).
  std::map<std::string, std::uint32_t> tids;
  std::vector<const char*> tid_names;
  for (const auto& ev : events_) {
    if (tids.emplace(ev.category, tids.size()).second) {
      tid_names.push_back(ev.category);
    }
  }
  std::vector<std::uint32_t> nodes;
  for (const auto& ev : events_) nodes.push_back(ev.node);
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  for (const std::uint32_t n : nodes) {
    emit("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
         std::to_string(n) + ",\"tid\":0,\"args\":{\"name\":\"node " +
         std::to_string(n) + "\"}}");
  }
  for (std::size_t t = 0; t < tid_names.size(); ++t) {
    for (const std::uint32_t n : nodes) {
      emit("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
           std::to_string(n) + ",\"tid\":" + std::to_string(t) +
           ",\"args\":{\"name\":\"" + json_escape(tid_names[t]) + "\"}}");
    }
  }

  for (const auto& ev : events_) {
    std::string line = "{\"ph\":\"";
    // Request roots ('R') render as complete spans; Chrome has no native
    // request phase.
    line.push_back(ev.phase == 'i' ? 'i' : 'X');
    line += "\",\"cat\":\"" + json_escape(ev.category) + "\",\"name\":\"" +
            json_escape(ev.name) + "\",\"pid\":" + std::to_string(ev.node) +
            ",\"tid\":" + std::to_string(tids.at(ev.category)) +
            ",\"ts\":" + ns_as_us(ev.start);
    if (ev.phase != 'i') {
      line += ",\"dur\":" + ns_as_us(ev.end - ev.start);
    } else {
      line += ",\"s\":\"t\"";
    }
    line += ",\"args\":{\"id\":" + std::to_string(ev.id);
    if (ev.detail != nullptr) {
      line += ",\"detail\":\"" + json_escape(ev.detail) + "\"";
    }
    if (ev.request != 0) line += ",\"request\":" + std::to_string(ev.request);
    if (ev.span != 0) line += ",\"span\":" + std::to_string(ev.span);
    if (ev.parent != 0) line += ",\"parent\":" + std::to_string(ev.parent);
    if (ev.cost != Cost::kNone) {
      line += ",\"cost\":\"" + std::string(to_string(ev.cost)) + "\"";
    }
    line += "}}";
    emit(line);
  }
  os << "\n]}\n";
}

void Tracer::write_summary(std::ostream& os) const {
  struct Agg {
    RunningStat span_us;
    std::uint64_t instants = 0;
  };
  std::map<std::string, Agg> aggs;
  for (const auto& ev : events_) {
    Agg& a = aggs[std::string(ev.category) + '.' + ev.name];
    if (ev.phase == 'i') {
      ++a.instants;
    } else {
      a.span_us.add(to_micros(ev.end - ev.start));
    }
  }
  os << "# trace summary: " << events_.size() << " events\n";
  os << "# operation | spans | total us | mean us | min us | max us | "
        "instants\n";
  for (const auto& [key, a] : aggs) {
    os << key << " | " << a.span_us.count() << " | " << fmt_f3(a.span_us.sum())
       << " | " << fmt_f3(a.span_us.mean()) << " | " << fmt_f3(a.span_us.min())
       << " | " << fmt_f3(a.span_us.max()) << " | " << a.instants << '\n';
  }
}

}  // namespace dcs::trace
