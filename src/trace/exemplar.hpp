// trace::ExemplarStore — per-bucket tail-latency exemplars.
//
// A latency histogram (common/stats.hpp LogHistogram) tells you that some
// requests landed in the 2^20..2^21 ns bucket; it cannot tell you WHICH
// request, or where that request spent its time.  The exemplar store keeps,
// for every (node, series, log2-bucket) cell, the maximum-latency request
// seen there: its id plus its six-category critical-path split.  `dcs
// explain` then links every tail bucket to a concrete request.
//
// Determinism: the merge of two stores is commutative and associative —
// counts sum, and the retained exemplar is the argmax by (max_ns desc,
// request asc) — so the merged result is independent of how observations
// were grouped into partitions.  Sharded benches merge per-partition
// stores on the main thread in partition order and get dumps
// byte-identical to the --shards=1 oracle.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "trace/trace.hpp"

namespace dcs::trace {

/// One histogram cell with its retained exemplar.
struct ExemplarBucket {
  std::uint32_t bucket = 0;   // log2 bucket index, as LogHistogram's
  std::uint64_t count = 0;    // observations landing in this cell
  SimNanos max_ns = 0;      // the exemplar's latency
  std::uint64_t request = 0;  // the exemplar's request id
  // The exemplar's critical-path split, indexed by Cost category - 1
  // (kHostCpu..kLockWait), as critical_path.hpp's Breakdown::by_cost.
  std::array<SimNanos, kCostCategories> cost_ns{};

  friend bool operator==(const ExemplarBucket&,
                         const ExemplarBucket&) = default;
};

/// Exemplar-carrying latency histograms keyed by (node, series name).
class ExemplarStore {
 public:
  /// LogHistogram's bucketing: 0 -> bucket 0, otherwise bit_width(v),
  /// clamped to 63.
  static std::uint32_t bucket_of(SimNanos v);

  /// Records one observation of `latency_ns` for (node, series), offering
  /// (request, cost_ns) as the cell's exemplar.
  void record(std::uint32_t node, std::string name, SimNanos latency_ns,
              std::uint64_t request,
              const std::array<SimNanos, kCostCategories>& cost_ns);

  /// Folds `other` in: counts sum; the retained exemplar per cell is the
  /// argmax by (max_ns desc, request asc).  Commutative and associative.
  void merge(const ExemplarStore& other);

  struct SeriesView {
    std::uint32_t node = 0;
    std::string name;
    std::vector<ExemplarBucket> buckets;  // bucket index ascending
  };

  /// All series in (node, name) order, buckets ascending.
  std::vector<SeriesView> all() const;

  bool empty() const { return series_.empty(); }

 private:
  using Key = std::pair<std::uint32_t, std::string>;
  // bucket index -> cell; std::map keeps dump order deterministic.
  std::map<Key, std::map<std::uint32_t, ExemplarBucket>> series_;
};

/// Writes the byte-stable `dcs-exemplar-v1` document: series in (node,
/// name) order, buckets ascending, cost split in Cost enum order.
void write_exemplar_json(std::ostream& os, const ExemplarStore& store);

}  // namespace dcs::trace
