// Cross-layer observability: a metrics registry plus a simulated-time
// event tracer.
//
// Two independent pieces, one vocabulary (see docs/OBSERVABILITY.md):
//
//   Registry  named counters / gauges / latency stats / log-histograms.
//             A layer resolves its handles once (the lookup is a map walk)
//             and then updates them with plain arithmetic — near-zero cost
//             on the hot path.  Names follow `layer.component.metric`.
//             `Registry::global()` is the process-wide instance every
//             built-in layer registers into; handles stay valid forever
//             (reset() zeroes values but never removes entries).
//
//   Tracer    records spans (op type, node, id, start/end sim::Time) and
//             instant events while installed as the process-wide current
//             tracer.  Emits Chrome `trace_event` JSON (load in
//             chrome://tracing or https://ui.perfetto.dev) and a plain-text
//             per-operation summary table.  With no tracer installed the
//             instrumentation costs exactly one pointer test per site.
//
// Both outputs are deterministic: the simulation engine replays
// identically for a given seed, and the writers format numbers with fixed
// precision, so two same-seed runs produce byte-identical files.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "sim/engine.hpp"
#include "sim/strand.hpp"

namespace dcs::trace {

// --- metrics registry ---

/// Monotonic event count.
struct Counter {
  std::uint64_t value = 0;
  void add(std::uint64_t delta = 1) { value += delta; }
};

/// Last-written instantaneous value (queue depth, cached bytes, ...).
struct Gauge {
  double value = 0.0;
  void set(double v) { value = v; }
};

/// Latency/size distribution summarized online (count/mean/min/max/stddev).
struct Distribution {
  RunningStat stat;
  void record(double v) { stat.add(v); }
  void record_ns(SimNanos t) { stat.add(static_cast<double>(t)); }
};

/// Power-of-two bucketed histogram (cascade depths, batch sizes, ...).
struct Histogram {
  LogHistogram hist;
  void record(std::uint64_t v) { hist.add(v); }
};

/// Named metric store.  Registration is idempotent: the first call for a
/// name creates the metric, later calls return the same object, and the
/// returned reference is stable for the registry's lifetime (node-based
/// storage).  Registering the same name as two different kinds is a
/// programming error and asserts.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry all built-in instrumentation uses.
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Distribution& distribution(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Lookup without registration; nullptr when `name` is absent or of a
  /// different kind.
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Distribution* find_distribution(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  /// All registered names in sorted order (the emission order of write()).
  std::vector<std::string> names() const;
  std::size_t size() const { return metrics_.size(); }

  /// Zeroes every value but keeps all registrations (handles stay valid).
  /// Call before a run whose metrics output must stand alone.
  void reset();

  /// Folds `other` into this registry: counters add, gauges take the other
  /// side's value, distributions merge exactly (Welford), histograms add
  /// bucket-wise.  Metrics absent on one side are created.
  void merge(const Registry& other);

  /// Plain-text dump, one metric per line, sorted by name, fixed-precision
  /// numbers — byte-deterministic for identical metric state.
  void write(std::ostream& os) const;

  /// Same content as a single JSON object, sorted by name: counters as
  /// integers, gauges fixed-precision, distributions/histograms as
  /// {"count", ...} objects.  Embedded in BENCH_*.json (docs/BENCHMARKS.md).
  void write_json(std::ostream& os) const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kDistribution, kHist };
  struct Metric {
    Kind kind;
    Counter counter;
    Gauge gauge;
    Distribution dist;
    Histogram hist;
  };

  Metric& get(std::string_view name, Kind kind);

  // std::map: stable nodes (references survive later insertions) and
  // sorted iteration for deterministic output.
  std::map<std::string, Metric, std::less<>> metrics_;
};

// --- simulated-time tracer ---

/// Resource category a span's duration is charged to by the critical-path
/// analyzer (docs/OBSERVABILITY.md).  The enumeration order is the
/// attribution precedence: when intervals overlap within one request, the
/// lowest-valued active category wins, so a tight active-resource span
/// (host CPU burning, NIC serializing) beats the broad wait span that
/// encloses it.
enum class Cost : std::uint8_t {
  kNone = 0,         // plain span, not a cost interval
  kHostCpu = 1,      // a core executing (run-queue quantum, copies, kernel)
  kNic = 2,          // HCA work: post/doorbell, serialization, completion
  kWire = 3,         // link latency, bytes in flight
  kQueueing = 4,     // runnable but waiting for a core / interrupt dispatch
  kCreditStall = 5,  // SDP credit or flow-control window exhausted
  kLockWait = 6,     // blocked in a DLM queue or service mutex
};

inline constexpr std::size_t kCostCategories = 6;

/// Stable report name ("host-cpu", "nic", ...); "none" for kNone.
const char* to_string(Cost c);

/// One recorded event.  Category/name/detail must be string literals (or
/// otherwise outlive the tracer): events store the pointers, not copies,
/// so recording is a few stores with no allocation.
struct TraceEvent {
  const char* category = "";   // layer, e.g. "verbs"
  const char* name = "";       // operation, e.g. "read"
  const char* detail = nullptr;  // optional qualifier, e.g. "Strict"
  std::uint64_t id = 0;        // qp / lock / key / byte count
  sim::Time start = 0;
  sim::Time end = 0;           // == start for instants
  std::uint64_t request = 0;   // causal request context (0 = untracked)
  std::uint64_t span = 0;      // span id within the tracer (0 = none)
  std::uint64_t parent = 0;    // enclosing span on the same strand (0 = root)
  std::uint32_t node = 0;
  Cost cost = Cost::kNone;
  char phase = 'X';            // 'X' span, 'i' instant, 'R' request root
};

class Tracer {
 public:
  /// Binds to the engine whose virtual clock timestamps events.
  explicit Tracer(sim::Engine& eng) : eng_(eng) {}
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Makes this the process-wide current tracer (at most one at a time).
  void install();
  /// Stops recording; safe to call when not installed.
  void uninstall();

  sim::Time now() const { return eng_.now(); }

  void instant(const char* category, const char* name, std::uint32_t node,
               std::uint64_t id = 0, const char* detail = nullptr);
  void complete(const char* category, const char* name, std::uint32_t node,
                std::uint64_t id, const char* detail, sim::Time start,
                sim::Time end);
  /// Fully-specified span record (causal links + cost category); used by
  /// Span and Request.  Zero-duration cost intervals are dropped: they
  /// contribute nothing to attribution and only bloat the event stream.
  void record(const TraceEvent& ev);

  /// Fresh causal ids.  Allocation order follows event order, so ids are
  /// deterministic across same-seed runs.
  std::uint64_t next_request_id() { return ++last_request_id_; }
  std::uint64_t next_span_id() { return ++last_span_id_; }

  std::size_t event_count() const { return events_.size(); }
  const std::vector<TraceEvent>& events() const { return events_; }

  /// Chrome trace_event JSON (chrome://tracing, Perfetto).  One process
  /// per simulated node, one thread per category.  Deterministic.
  void write_chrome_json(std::ostream& os) const;
  /// Plain-text per-(category,name) aggregate: count, total/mean/min/max
  /// span time in microseconds.  Deterministic.
  void write_summary(std::ostream& os) const;

 private:
  sim::Engine& eng_;
  std::vector<TraceEvent> events_;
  std::uint64_t last_request_id_ = 0;
  std::uint64_t last_span_id_ = 0;
};

/// The installed tracer, or nullptr (the one-branch gate every
/// instrumentation site tests).
Tracer* current_tracer();

/// RAII span: records start time at construction, emits a complete event
/// at destruction.  Lives in a coroutine frame across co_awaits.  When no
/// tracer is installed construction and destruction are each one branch.
///
/// While a tracer is installed a span also threads itself into the ambient
/// strand context: it becomes the strand's innermost span for its lifetime
/// (children point back via `parent`) and inherits the strand's request id.
class Span {
 public:
  Span(const char* category, const char* name, std::uint32_t node,
       std::uint64_t id = 0, const char* detail = nullptr,
       Cost cost = Cost::kNone) {
    if (Tracer* t = current_tracer()) {
      tracer_ = t;
      category_ = category;
      name_ = name;
      detail_ = detail;
      id_ = id;
      node_ = node;
      cost_ = cost;
      start_ = t->now();
      auto& ctx = sim::strand_ctx();
      request_ = ctx.request;
      parent_ = ctx.span;
      span_ = t->next_span_id();
      ctx.span = span_;
    }
  }
  /// Cost-first overload used by DCS_TRACE_COST_SPAN.
  Span(Cost cost, const char* category, const char* name, std::uint32_t node,
       std::uint64_t id = 0, const char* detail = nullptr)
      : Span(category, name, node, id, detail, cost) {}
  ~Span() {
    // Re-check installation: a span parked in a coroutine frame may be
    // destroyed at engine teardown, after the tracer was uninstalled.
    if (tracer_ != nullptr && tracer_ == current_tracer()) {
      sim::strand_ctx().span = parent_;
      TraceEvent ev;
      ev.category = category_;
      ev.name = name_;
      ev.detail = detail_;
      ev.id = id_;
      ev.start = start_;
      ev.end = tracer_->now();
      ev.request = request_;
      ev.span = span_;
      ev.parent = parent_;
      ev.node = node_;
      ev.cost = cost_;
      ev.phase = 'X';
      tracer_->record(ev);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  const char* category_ = "";
  const char* name_ = "";
  const char* detail_ = nullptr;
  std::uint64_t id_ = 0;
  sim::Time start_ = 0;
  std::uint64_t request_ = 0;
  std::uint64_t span_ = 0;
  std::uint64_t parent_ = 0;
  std::uint32_t node_ = 0;
  Cost cost_ = Cost::kNone;
};

/// The request id of the currently running strand (0 = untracked).  Stamp
/// it into messages that cross strand boundaries, and adopt it on the far
/// side with AdoptContext so server-side work is charged to the request.
inline std::uint64_t current_request() { return sim::strand_ctx().request; }

/// RAII request root: opens a fresh causal context on the current strand
/// and emits a phase-'R' event covering construction..destruction — the
/// end-to-end window the critical-path analyzer attributes.  Restores the
/// previous strand context on destruction, so requests nest and wrapping a
/// sub-operation inside an outer request replaces (not extends) the
/// attribution window.  Free when no tracer is installed.
class Request {
 public:
  Request(const char* name, std::uint32_t node, std::uint64_t id = 0) {
    if (Tracer* t = current_tracer()) {
      tracer_ = t;
      name_ = name;
      node_ = node;
      id_ = id;
      start_ = t->now();
      prev_ = sim::strand_ctx();
      request_ = t->next_request_id();
      sim::strand_ctx() = {request_, 0};
    }
  }
  ~Request() {
    if (tracer_ != nullptr && tracer_ == current_tracer()) {
      sim::strand_ctx() = prev_;
      TraceEvent ev;
      ev.category = "request";
      ev.name = name_;
      ev.id = id_;
      ev.start = start_;
      ev.end = tracer_->now();
      ev.request = request_;
      ev.node = node_;
      ev.phase = 'R';
      tracer_->record(ev);
    }
  }
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  /// 0 when no tracer is installed.
  std::uint64_t id() const { return request_; }

 private:
  Tracer* tracer_ = nullptr;
  const char* name_ = "";
  std::uint64_t id_ = 0;
  std::uint64_t request_ = 0;
  sim::Time start_ = 0;
  sim::StrandCtx prev_{};
  std::uint32_t node_ = 0;
};

/// RAII follows-from adoption: a strand handling a message stamped with a
/// request id (verbs Message::ctx, TCP segment context, SDP delivery)
/// charges its work to that request for the scope's lifetime.  A zero id
/// (untracked sender, tracing off) adopts nothing.
class AdoptContext {
 public:
  explicit AdoptContext(std::uint64_t request) {
    if (request != 0 && current_tracer() != nullptr) {
      adopted_ = true;
      prev_ = sim::strand_ctx();
      sim::strand_ctx() = {request, 0};
    }
  }
  ~AdoptContext() {
    if (adopted_) sim::strand_ctx() = prev_;
  }
  AdoptContext(const AdoptContext&) = delete;
  AdoptContext& operator=(const AdoptContext&) = delete;

 private:
  bool adopted_ = false;
  sim::StrandCtx prev_{};
};

}  // namespace dcs::trace

// --- instrumentation macros ---
//
// Compile-time removable (define DCS_TRACE_DISABLED) and runtime-cheap:
// with tracing compiled in but no tracer installed each site costs one
// pointer test.  Arguments after `node` are optional: (id) or
// (id, detail).
#ifndef DCS_TRACE_DISABLED
#define DCS_TRACE_CAT_(a, b) a##b
#define DCS_TRACE_CAT(a, b) DCS_TRACE_CAT_(a, b)
/// Scoped span covering the rest of the enclosing block.
#define DCS_TRACE_SPAN(category, name, node, ...)                \
  ::dcs::trace::Span DCS_TRACE_CAT(dcs_trace_span_, __LINE__) {  \
    category, name, node __VA_OPT__(, ) __VA_ARGS__              \
  }
/// Scoped span whose duration is charged to a Cost category by the
/// critical-path analyzer.  `cost` is a trace::Cost enumerator.
#define DCS_TRACE_COST_SPAN(cost, category, name, node, ...)     \
  ::dcs::trace::Span DCS_TRACE_CAT(dcs_trace_span_, __LINE__) {  \
    cost, category, name, node __VA_OPT__(, ) __VA_ARGS__        \
  }
/// Zero-duration marker at the current virtual time.
#define DCS_TRACE_INSTANT(category, name, node, ...)              \
  do {                                                            \
    if (auto* dcs_trace_t = ::dcs::trace::current_tracer()) {     \
      dcs_trace_t->instant(category, name,                        \
                           node __VA_OPT__(, ) __VA_ARGS__);      \
    }                                                             \
  } while (0)
#else
#define DCS_TRACE_SPAN(category, name, node, ...) ((void)0)
#define DCS_TRACE_COST_SPAN(cost, category, name, node, ...) ((void)0)
#define DCS_TRACE_INSTANT(category, name, node, ...) ((void)0)
#endif
