// Cross-layer observability: a metrics registry plus a simulated-time
// event tracer.
//
// Two independent pieces, one vocabulary (see docs/OBSERVABILITY.md):
//
//   Registry  named counters / gauges / latency stats / log-histograms.
//             A layer resolves its handles once (the lookup is a map walk)
//             and then updates them with plain arithmetic — near-zero cost
//             on the hot path.  Names follow `layer.component.metric`.
//             `Registry::global()` is the per-thread instance every
//             built-in layer registers into (one per OS thread, so shard
//             workers never race — sharded runs merge worker registries at
//             teardown); handles stay valid for the thread's lifetime
//             (reset() zeroes values but never removes entries).
//
//   Tracer    records spans (op type, node, id, start/end sim::Time) and
//             instant events while installed as the process-wide current
//             tracer.  Emits Chrome `trace_event` JSON (load in
//             chrome://tracing or https://ui.perfetto.dev) and a plain-text
//             per-operation summary table.  With no tracer installed the
//             instrumentation costs exactly one pointer test per site.
//
// Both outputs are deterministic: the simulation engine replays
// identically for a given seed, and the writers format numbers with fixed
// precision, so two same-seed runs produce byte-identical files.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "sim/engine.hpp"
#include "sim/strand.hpp"

namespace dcs::trace {

// --- metrics registry ---

/// Monotonic event count.
struct Counter {
  std::uint64_t value = 0;
  void add(std::uint64_t delta = 1) { value += delta; }
};

/// Last-written instantaneous value (queue depth, cached bytes, ...).
struct Gauge {
  double value = 0.0;
  void set(double v) { value = v; }
};

/// Latency/size distribution summarized online (count/mean/min/max/stddev).
struct Distribution {
  RunningStat stat;
  void record(double v) { stat.add(v); }
  void record_ns(SimNanos t) { stat.add(static_cast<double>(t)); }
};

/// Power-of-two bucketed histogram (cascade depths, batch sizes, ...).
struct Histogram {
  LogHistogram hist;
  void record(std::uint64_t v) { hist.add(v); }
};

/// Named metric store.  Registration is idempotent: the first call for a
/// name creates the metric, later calls return the same object, and the
/// returned reference is stable for the registry's lifetime (node-based
/// storage).  Registering the same name as two different kinds is a
/// programming error and asserts.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The per-thread registry all built-in instrumentation on this thread
  /// uses (see the header comment for the sharding rationale).
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Distribution& distribution(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Lookup without registration; nullptr when `name` is absent or of a
  /// different kind.
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Distribution* find_distribution(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  /// All registered names in sorted order (the emission order of write()).
  std::vector<std::string> names() const;
  std::size_t size() const { return metrics_.size(); }

  /// Zeroes every value but keeps all registrations (handles stay valid).
  /// Call before a run whose metrics output must stand alone.
  void reset();

  /// Folds `other` into this registry: counters add, gauges take the other
  /// side's value, distributions merge exactly (Welford), histograms add
  /// bucket-wise.  Metrics absent on one side are created.
  void merge(const Registry& other);

  /// Plain-text dump, one metric per line, sorted by name, fixed-precision
  /// numbers — byte-deterministic for identical metric state.
  void write(std::ostream& os) const;

  /// Same content as a single JSON object, sorted by name: counters as
  /// integers, gauges fixed-precision, distributions/histograms as
  /// {"count", ...} objects.  Embedded in BENCH_*.json (docs/BENCHMARKS.md).
  void write_json(std::ostream& os) const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kDistribution, kHist };
  struct Metric {
    Kind kind;
    Counter counter;
    Gauge gauge;
    Distribution dist;
    Histogram hist;
  };

  Metric& get(std::string_view name, Kind kind);

  // std::map: stable nodes (references survive later insertions) and
  // sorted iteration for deterministic output.
  std::map<std::string, Metric, std::less<>> metrics_;
};

// --- simulated-time tracer ---

/// Resource category a span's duration is charged to by the critical-path
/// analyzer (docs/OBSERVABILITY.md).  The enumeration order is the
/// attribution precedence: when intervals overlap within one request, the
/// lowest-valued active category wins, so a tight active-resource span
/// (host CPU burning, NIC serializing) beats the broad wait span that
/// encloses it.
enum class Cost : std::uint8_t {
  kNone = 0,         // plain span, not a cost interval
  kHostCpu = 1,      // a core executing (run-queue quantum, copies, kernel)
  kNic = 2,          // HCA work: post/doorbell, serialization, completion
  kWire = 3,         // link latency, bytes in flight
  kQueueing = 4,     // runnable but waiting for a core / interrupt dispatch
  kCreditStall = 5,  // SDP credit or flow-control window exhausted
  kLockWait = 6,     // blocked in a DLM queue or service mutex
};

inline constexpr std::size_t kCostCategories = 6;

/// Stable report name ("host-cpu", "nic", ...); "none" for kNone.
const char* to_string(Cost c);

/// One recorded event.  Category/name/detail must be string literals (or
/// otherwise outlive the tracer): events store the pointers, not copies,
/// so recording is a few stores with no allocation.
struct TraceEvent {
  const char* category = "";   // layer, e.g. "verbs"
  const char* name = "";       // operation, e.g. "read"
  const char* detail = nullptr;  // optional qualifier, e.g. "Strict"
  std::uint64_t id = 0;        // qp / lock / key / byte count
  sim::Time start = 0;
  sim::Time end = 0;           // == start for instants
  std::uint64_t request = 0;   // causal request context (0 = untracked)
  std::uint64_t span = 0;      // span id within the tracer (0 = none)
  std::uint64_t parent = 0;    // enclosing span on the same strand (0 = root)
  std::uint32_t node = 0;
  Cost cost = Cost::kNone;
  char phase = 'X';            // 'X' span, 'i' instant, 'R' request root
};

class Tracer {
 public:
  /// Binds to the engine whose virtual clock timestamps events.
  explicit Tracer(sim::Engine& eng) : eng_(eng) {}
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Makes this the process-wide current tracer (at most one at a time).
  void install();
  /// Stops recording; safe to call when not installed.
  void uninstall();

  sim::Time now() const { return eng_.now(); }

  void instant(const char* category, const char* name, std::uint32_t node,
               std::uint64_t id = 0, const char* detail = nullptr);
  void complete(const char* category, const char* name, std::uint32_t node,
                std::uint64_t id, const char* detail, sim::Time start,
                sim::Time end);
  /// Fully-specified span record (causal links + cost category); used by
  /// Span and Request.  Zero-duration cost intervals are dropped: they
  /// contribute nothing to attribution and only bloat the event stream.
  void record(const TraceEvent& ev);

  /// Fresh causal ids.  Allocation order follows event order, so ids are
  /// deterministic across same-seed runs.
  std::uint64_t next_request_id() { return ++last_request_id_; }
  std::uint64_t next_span_id() { return ++last_span_id_; }

  std::size_t event_count() const { return events_.size(); }
  const std::vector<TraceEvent>& events() const { return events_; }

  /// Chrome trace_event JSON (chrome://tracing, Perfetto).  One process
  /// per simulated node, one thread per category.  Deterministic.
  void write_chrome_json(std::ostream& os) const;
  /// Plain-text per-(category,name) aggregate: count, total/mean/min/max
  /// span time in microseconds.  Deterministic.
  void write_summary(std::ostream& os) const;

 private:
  sim::Engine& eng_;
  std::vector<TraceEvent> events_;
  std::uint64_t last_request_id_ = 0;
  std::uint64_t last_span_id_ = 0;
};

class FlightRecorder;

namespace detail {

/// The two record sinks an instrumentation site can feed: the full tracer
/// (unbounded event vector, Chrome JSON) and the flight recorder (bounded
/// per-node rings, post-mortem dumps — src/trace/flight.hpp).  Either, both
/// or neither may be installed; `any` is kept equal to (tracer || flight)
/// by the install/uninstall paths so the disarmed gate stays one load and
/// one predictable branch.
struct Sinks {
  Tracer* tracer = nullptr;
  FlightRecorder* flight = nullptr;
  bool any = false;
};

// One sink set per OS thread: a tracer or flight recorder installed on the
// main thread observes only main-thread engines, and each shard worker of a
// sharded run (sim/shard.hpp) may arm its own recorder over its own engine
// without racing.  Single-threaded programs behave exactly as before.
inline Sinks& sinks() {
  static thread_local Sinks instance;
  return instance;
}

inline bool armed() { return sinks().any; }

// Flight-recorder forwarding, out of line so this header does not need the
// FlightRecorder definition (defined in flight.cpp).
SimNanos flight_now(FlightRecorder* fr);
std::uint64_t flight_next_request(FlightRecorder* fr);
std::uint64_t flight_next_span(FlightRecorder* fr);
void flight_span(FlightRecorder* fr, const TraceEvent& ev);
void flight_request_begin(FlightRecorder* fr, std::uint64_t request,
                          const char* name, std::uint32_t node,
                          std::uint64_t id);
void flight_request_end(FlightRecorder* fr, std::uint64_t request,
                        const char* name, std::uint32_t node,
                        std::uint64_t id);
/// Fan-out bodies of DCS_TRACE_INSTANT / DCS_LOG once armed() passed.
void emit_instant(const char* category, const char* name, std::uint32_t node,
                  std::uint64_t id = 0, const char* detail = nullptr);
void emit_log(const char* layer, const char* opcode, std::uint32_t node,
              std::uint64_t a0 = 0, std::uint64_t a1 = 0);

/// Virtual time as seen by whichever sink is installed (both are bound to
/// the same engine when both are installed).
inline SimNanos observed_now() {
  Sinks& s = sinks();
  return s.tracer != nullptr ? s.tracer->now() : flight_now(s.flight);
}

}  // namespace detail

/// The installed tracer, or nullptr (the one-branch gate every
/// instrumentation site tests).
inline Tracer* current_tracer() { return detail::sinks().tracer; }

/// RAII span: records start time at construction, emits a complete event
/// at destruction.  Lives in a coroutine frame across co_awaits.  When no
/// tracer is installed construction and destruction are each one branch.
///
/// While a tracer is installed a span also threads itself into the ambient
/// strand context: it becomes the strand's innermost span for its lifetime
/// (children point back via `parent`) and inherits the strand's request id.
class Span {
 public:
  Span(const char* category, const char* name, std::uint32_t node,
       std::uint64_t id = 0, const char* detail = nullptr,
       Cost cost = Cost::kNone) {
    if (detail::armed()) {
      auto& s = detail::sinks();
      tracer_ = s.tracer;
      flight_ = s.flight;
      category_ = category;
      name_ = name;
      detail_ = detail;
      id_ = id;
      node_ = node;
      cost_ = cost;
      start_ = detail::observed_now();
      auto& ctx = sim::strand_ctx();
      request_ = ctx.request;
      parent_ = ctx.span;
      span_ = tracer_ != nullptr ? tracer_->next_span_id()
                                 : detail::flight_next_span(flight_);
      ctx.span = span_;
    }
  }
  /// Cost-first overload used by DCS_TRACE_COST_SPAN.
  Span(Cost cost, const char* category, const char* name, std::uint32_t node,
       std::uint64_t id = 0, const char* detail = nullptr)
      : Span(category, name, node, id, detail, cost) {}
  ~Span() {
    // Re-check installation: a span parked in a coroutine frame may be
    // destroyed at engine teardown, after the sinks were uninstalled.
    auto& s = detail::sinks();
    const bool traced = tracer_ != nullptr && tracer_ == s.tracer;
    const bool recorded = flight_ != nullptr && flight_ == s.flight;
    if (!traced && !recorded) return;
    sim::strand_ctx().span = parent_;
    TraceEvent ev;
    ev.category = category_;
    ev.name = name_;
    ev.detail = detail_;
    ev.id = id_;
    ev.start = start_;
    ev.end = detail::observed_now();
    ev.request = request_;
    ev.span = span_;
    ev.parent = parent_;
    ev.node = node_;
    ev.cost = cost_;
    ev.phase = 'X';
    if (traced) tracer_->record(ev);
    if (recorded) detail::flight_span(flight_, ev);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  FlightRecorder* flight_ = nullptr;
  const char* category_ = "";
  const char* name_ = "";
  const char* detail_ = nullptr;
  std::uint64_t id_ = 0;
  sim::Time start_ = 0;
  std::uint64_t request_ = 0;
  std::uint64_t span_ = 0;
  std::uint64_t parent_ = 0;
  std::uint32_t node_ = 0;
  Cost cost_ = Cost::kNone;
};

/// The request id of the currently running strand (0 = untracked).  Stamp
/// it into messages that cross strand boundaries, and adopt it on the far
/// side with AdoptContext so server-side work is charged to the request.
inline std::uint64_t current_request() { return sim::strand_ctx().request; }

/// RAII request root: opens a fresh causal context on the current strand
/// and emits a phase-'R' event covering construction..destruction — the
/// end-to-end window the critical-path analyzer attributes.  Restores the
/// previous strand context on destruction, so requests nest and wrapping a
/// sub-operation inside an outer request replaces (not extends) the
/// attribution window.  Free when no tracer is installed.
class Request {
 public:
  Request(const char* name, std::uint32_t node, std::uint64_t id = 0) {
    if (detail::armed()) {
      auto& s = detail::sinks();
      tracer_ = s.tracer;
      flight_ = s.flight;
      name_ = name;
      node_ = node;
      id_ = id;
      start_ = detail::observed_now();
      prev_ = sim::strand_ctx();
      // The tracer owns request-id allocation when present so both sinks
      // agree on ids; flight-only runs allocate from the recorder.
      request_ = tracer_ != nullptr ? tracer_->next_request_id()
                                    : detail::flight_next_request(flight_);
      sim::strand_ctx() = {request_, 0};
      if (flight_ != nullptr) {
        detail::flight_request_begin(flight_, request_, name_, node_, id_);
      }
    }
  }
  ~Request() {
    auto& s = detail::sinks();
    const bool traced = tracer_ != nullptr && tracer_ == s.tracer;
    const bool recorded = flight_ != nullptr && flight_ == s.flight;
    if (!traced && !recorded) return;
    sim::strand_ctx() = prev_;
    if (traced) {
      TraceEvent ev;
      ev.category = "request";
      ev.name = name_;
      ev.id = id_;
      ev.start = start_;
      ev.end = tracer_->now();
      ev.request = request_;
      ev.node = node_;
      ev.phase = 'R';
      tracer_->record(ev);
    }
    if (recorded) {
      detail::flight_request_end(flight_, request_, name_, node_, id_);
    }
  }
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  /// 0 when neither a tracer nor a flight recorder is installed.
  std::uint64_t id() const { return request_; }

 private:
  Tracer* tracer_ = nullptr;
  FlightRecorder* flight_ = nullptr;
  const char* name_ = "";
  std::uint64_t id_ = 0;
  std::uint64_t request_ = 0;
  sim::Time start_ = 0;
  sim::StrandCtx prev_{};
  std::uint32_t node_ = 0;
};

/// RAII follows-from adoption: a strand handling a message stamped with a
/// request id (verbs Message::ctx, TCP segment context, SDP delivery)
/// charges its work to that request for the scope's lifetime.  A zero id
/// (untracked sender, tracing off) adopts nothing.
class AdoptContext {
 public:
  explicit AdoptContext(std::uint64_t request) {
    if (request != 0 && detail::armed()) {
      adopted_ = true;
      prev_ = sim::strand_ctx();
      sim::strand_ctx() = {request, 0};
    }
  }
  ~AdoptContext() {
    if (adopted_) sim::strand_ctx() = prev_;
  }
  AdoptContext(const AdoptContext&) = delete;
  AdoptContext& operator=(const AdoptContext&) = delete;

 private:
  bool adopted_ = false;
  sim::StrandCtx prev_{};
};

}  // namespace dcs::trace

// --- instrumentation macros ---
//
// Compile-time removable (define DCS_TRACE_DISABLED) and runtime-cheap:
// with tracing compiled in but no tracer installed each site costs one
// pointer test.  Arguments after `node` are optional: (id) or
// (id, detail).
#ifndef DCS_TRACE_DISABLED
#define DCS_TRACE_CAT_(a, b) a##b
#define DCS_TRACE_CAT(a, b) DCS_TRACE_CAT_(a, b)
/// Scoped span covering the rest of the enclosing block.
#define DCS_TRACE_SPAN(category, name, node, ...)                \
  ::dcs::trace::Span DCS_TRACE_CAT(dcs_trace_span_, __LINE__) {  \
    category, name, node __VA_OPT__(, ) __VA_ARGS__              \
  }
/// Scoped span whose duration is charged to a Cost category by the
/// critical-path analyzer.  `cost` is a trace::Cost enumerator.
#define DCS_TRACE_COST_SPAN(cost, category, name, node, ...)     \
  ::dcs::trace::Span DCS_TRACE_CAT(dcs_trace_span_, __LINE__) {  \
    cost, category, name, node __VA_OPT__(, ) __VA_ARGS__        \
  }
/// Zero-duration marker at the current virtual time.
#define DCS_TRACE_INSTANT(category, name, node, ...)              \
  do {                                                            \
    if (::dcs::trace::detail::armed()) {                          \
      ::dcs::trace::detail::emit_instant(                         \
          category, name, node __VA_OPT__(, ) __VA_ARGS__);       \
    }                                                             \
  } while (0)
/// Structured log record: layer and opcode string literals plus up to two
/// integer arguments, stamped with virtual time and the current request.
/// Feeds the flight recorder's bounded per-node ring (and, when a tracer is
/// installed, the trace as an instant).  Meant for error and stall paths:
/// the records survive in the ring until a post-mortem dump needs them.
#define DCS_LOG(layer, opcode, node, ...)                         \
  do {                                                            \
    if (::dcs::trace::detail::armed()) {                          \
      ::dcs::trace::detail::emit_log(                             \
          layer, opcode, node __VA_OPT__(, ) __VA_ARGS__);        \
    }                                                             \
  } while (0)
#else
#define DCS_TRACE_SPAN(category, name, node, ...) ((void)0)
#define DCS_TRACE_COST_SPAN(cost, category, name, node, ...) ((void)0)
#define DCS_TRACE_INSTANT(category, name, node, ...) ((void)0)
#define DCS_LOG(layer, opcode, node, ...) ((void)0)
#endif
