// Metric collection across shard workers.
//
// trace::Registry::global() is one instance per OS thread (see trace.hpp),
// so in a sharded run every worker accumulates its partitions' counters in
// its own registry — and that registry dies with the worker thread.  This
// helper drains them into the coordinator's registry while the pool is
// still alive.  Call it after the last run_until() and before the
// ShardedEngine is destroyed.
//
// Merge order is worker 0, 1, ... but the result does not depend on it:
// Registry::merge is value-additive (counters add, distributions merge
// exactly), so the collected content is a pure function of what the
// partitions recorded — identical for every worker count.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "sim/shard.hpp"
#include "trace/trace.hpp"

namespace dcs::trace {

/// Folds every worker's Registry::global() into the calling thread's
/// Registry::global() and resets the workers' registries (so repeated
/// collection never double-counts).
inline void collect_shard_registries(sim::ShardedEngine& sharded) {
  std::vector<std::unique_ptr<Registry>> slots(sharded.workers());
  sharded.for_each_worker([&](std::uint32_t w) {
    slots[w] = std::make_unique<Registry>();
    slots[w]->merge(Registry::global());
    Registry::global().reset();
  });
  for (const auto& slot : slots) Registry::global().merge(*slot);
  // The collected registry must enumerate in sorted series-name order no
  // matter how many workers contributed or in what order they merged —
  // the byte-identity contract every emitter downstream of a sharded run
  // (write_json, the obs time-series ingest) relies on.
  const auto names = Registry::global().names();
  DCS_CHECK_MSG(std::is_sorted(names.begin(), names.end()),
                "collected shard registries out of (series name) order");
}

}  // namespace dcs::trace
