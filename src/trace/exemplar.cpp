#include "trace/exemplar.hpp"

#include <bit>
#include <ostream>
#include <utility>

namespace dcs::trace {

namespace {

/// True when `cand` should replace `cur` as a cell's exemplar: larger
/// latency wins; ties keep the smaller request id so merges are
/// grouping-independent.
bool better_exemplar(SimNanos cand_ns, std::uint64_t cand_req,
                     SimNanos cur_ns, std::uint64_t cur_req) {
  if (cand_ns != cur_ns) return cand_ns > cur_ns;
  return cand_req < cur_req;
}

}  // namespace

std::uint32_t ExemplarStore::bucket_of(SimNanos v) {
  const std::uint32_t b =
      v == 0 ? 0u : static_cast<std::uint32_t>(std::bit_width(v));
  return b < 63u ? b : 63u;
}

void ExemplarStore::record(
    std::uint32_t node, std::string name, SimNanos latency_ns,
    std::uint64_t request,
    const std::array<SimNanos, kCostCategories>& cost_ns) {
  auto& buckets = series_[Key{node, std::move(name)}];
  const std::uint32_t b = bucket_of(latency_ns);
  auto [it, inserted] = buckets.try_emplace(b);
  ExemplarBucket& cell = it->second;
  cell.bucket = b;
  cell.count += 1;
  if (inserted ||
      better_exemplar(latency_ns, request, cell.max_ns, cell.request)) {
    cell.max_ns = latency_ns;
    cell.request = request;
    cell.cost_ns = cost_ns;
  }
}

void ExemplarStore::merge(const ExemplarStore& other) {
  for (const auto& [key, theirs] : other.series_) {
    auto& mine = series_[key];
    for (const auto& [b, cell] : theirs) {
      auto [it, inserted] = mine.try_emplace(b);
      ExemplarBucket& dst = it->second;
      if (inserted) {
        dst = cell;
        continue;
      }
      dst.count += cell.count;
      if (better_exemplar(cell.max_ns, cell.request, dst.max_ns,
                          dst.request)) {
        dst.max_ns = cell.max_ns;
        dst.request = cell.request;
        dst.cost_ns = cell.cost_ns;
      }
    }
  }
}

std::vector<ExemplarStore::SeriesView> ExemplarStore::all() const {
  std::vector<SeriesView> out;
  out.reserve(series_.size());
  for (const auto& [key, buckets] : series_) {
    SeriesView view;
    view.node = key.first;
    view.name = key.second;
    view.buckets.reserve(buckets.size());
    for (const auto& [b, cell] : buckets) view.buckets.push_back(cell);
    out.push_back(std::move(view));
  }
  return out;
}

void write_exemplar_json(std::ostream& os, const ExemplarStore& store) {
  os << "{\n";
  os << "  \"schema\": \"dcs-exemplar-v1\",\n";
  os << "  \"series\": [";
  bool first_series = true;
  for (const auto& view : store.all()) {
    os << (first_series ? "\n" : ",\n");
    first_series = false;
    os << "    {\n";
    os << "      \"node\": " << view.node << ",\n";
    os << "      \"name\": \"" << view.name << "\",\n";
    os << "      \"buckets\": [";
    bool first_bucket = true;
    for (const ExemplarBucket& cell : view.buckets) {
      os << (first_bucket ? "\n" : ",\n");
      first_bucket = false;
      os << "        { \"bucket\": " << cell.bucket
         << ", \"count\": " << cell.count << ", \"max_ns\": " << cell.max_ns
         << ", \"request\": " << cell.request
         << ", \"critical_path_ns\": {";
      SimNanos attributed = 0;
      for (std::size_t c = 0; c < kCostCategories; ++c) {
        const Cost cost = static_cast<Cost>(c + 1);
        os << (c == 0 ? " " : ", ");
        os << "\"" << to_string(cost) << "\": " << cell.cost_ns[c];
        attributed += cell.cost_ns[c];
      }
      os << ", \"attributed\": " << attributed << " } }";
    }
    os << (first_bucket ? "]\n" : "\n      ]\n");
    os << "    }";
  }
  os << (first_series ? "]\n" : "\n  ]\n");
  os << "}\n";
}

}  // namespace dcs::trace
