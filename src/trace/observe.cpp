#include "trace/observe.hpp"

#include <cstdio>
#include <fstream>

#include "trace/critical_path.hpp"
#include "trace/flight.hpp"

namespace dcs::trace {

ObservedRun::ObservedRun(sim::Engine& eng, ObserveOptions opts)
    : opts_(std::move(opts)), tracer_(eng) {
  if (!opts_.enabled()) return;
  Registry::global().reset();
  // Critical-path and bench-json output need the event stream too.
  if (!opts_.trace_out.empty() || !opts_.critical_path_out.empty() ||
      !opts_.bench_json.empty()) {
    tracer_.install();
  }
  if (!opts_.postmortem_dir.empty()) {
    flight_ = std::make_unique<FlightRecorder>(
        eng, FlightConfig{.postmortem_dir = opts_.postmortem_dir,
                          .prefix = opts_.bench_name});
    flight_->install();
  }
}

ObservedRun::~ObservedRun() {
  if (flight_ != nullptr) flight_->uninstall();
  tracer_.uninstall();
  if (!opts_.trace_out.empty()) {
    std::ofstream os(opts_.trace_out);
    if (os) {
      tracer_.write_chrome_json(os);
      std::fprintf(stderr, "trace: %zu events -> %s\n", tracer_.event_count(),
                   opts_.trace_out.c_str());
    } else {
      std::fprintf(stderr, "trace: cannot open %s\n", opts_.trace_out.c_str());
    }
  }
  if (!opts_.metrics_out.empty()) {
    std::ofstream os(opts_.metrics_out);
    if (os) {
      Registry::global().write(os);
      std::fprintf(stderr, "metrics: %zu metrics -> %s\n",
                   Registry::global().size(), opts_.metrics_out.c_str());
    } else {
      std::fprintf(stderr, "metrics: cannot open %s\n",
                   opts_.metrics_out.c_str());
    }
  }
  if (!opts_.critical_path_out.empty()) {
    std::ofstream os(opts_.critical_path_out);
    if (os) {
      CriticalPath(tracer_).write_report(os);
      std::fprintf(stderr, "critical-path: -> %s\n",
                   opts_.critical_path_out.c_str());
    } else {
      std::fprintf(stderr, "critical-path: cannot open %s\n",
                   opts_.critical_path_out.c_str());
    }
  }
  if (!opts_.bench_json.empty()) {
    std::ofstream os(opts_.bench_json);
    if (os) {
      // Single-scenario dcs-bench-v1 snapshot (docs/BENCHMARKS.md), the
      // same shape bench/harness.cpp writes for multi-scenario benches.
      const CriticalPath cp(tracer_);
      os << "{\n  \"schema\": \"dcs-bench-v1\",\n  \"bench\": \""
         << opts_.bench_name << "\",\n  \"scenarios\": {\n    \"run\": {\n";
      os << "      \"virtual_ns\": " << tracer_.now() << ",\n";
      os << "      \"metrics\": {},\n";
      os << "      \"latency_ns\": {\"count\": 0},\n";
      os << "      \"registry\": ";
      Registry::global().write_json(os);
      if (cp.aggregate().count > 0) {
        os << ",\n      \"critical_path\": ";
        write_breakdown_json(os, cp.aggregate());
      }
      os << "\n    }\n  }\n}\n";
      std::fprintf(stderr, "bench: -> %s\n", opts_.bench_json.c_str());
    } else {
      std::fprintf(stderr, "bench: cannot open %s\n",
                   opts_.bench_json.c_str());
    }
  }
}

}  // namespace dcs::trace
