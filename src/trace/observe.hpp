// RAII scope for one observed run: installs the requested observability
// sinks (tracer, flight recorder) for the duration of a simulation and
// writes the requested files when the run ends.  Shared by the benches and
// the `dcs` scenario driver so every binary spells the flags the same way.
// Flag extraction itself lives in bench/harness.hpp
// (bench::extract_harness_flags), the single parser for all observability
// and telemetry flags.
#pragma once

#include <memory>
#include <string>

#include "trace/trace.hpp"

namespace dcs::trace {

class FlightRecorder;

/// Output destinations for one observed run.  Empty string = not requested.
struct ObserveOptions {
  std::string trace_out;          // Chrome trace_event JSON file
  std::string metrics_out;        // plain-text metrics dump file
  std::string critical_path_out;  // plain-text critical-path report
  std::string bench_json;         // single-run dcs-bench-v1 JSON snapshot
  std::string postmortem_dir;     // arm a FlightRecorder dumping here
  std::string bench_name = "dcs";  // "bench" field / postmortem prefix

  bool enabled() const {
    return !trace_out.empty() || !metrics_out.empty() ||
           !critical_path_out.empty() || !bench_json.empty() ||
           !postmortem_dir.empty();
  }
};

/// Observes one simulation run.  Construction resets the global metrics
/// registry (so the output stands alone), installs a tracer bound to `eng`
/// when a trace file was requested, and arms a FlightRecorder when a
/// post-mortem directory was requested.  Destruction uninstalls both and
/// writes the requested files; failures to open a file are reported on
/// stderr but never abort the run.
///
/// Declare it after the engine and before the workload:
///
///   sim::Engine eng;
///   trace::ObservedRun observed(eng, opts);
///   ... build topology, spawn, eng.run() ...
class ObservedRun {
 public:
  ObservedRun(sim::Engine& eng, ObserveOptions opts);
  ~ObservedRun();
  ObservedRun(const ObservedRun&) = delete;
  ObservedRun& operator=(const ObservedRun&) = delete;

 private:
  ObserveOptions opts_;
  Tracer tracer_;
  std::unique_ptr<FlightRecorder> flight_;
};

}  // namespace dcs::trace
