// CLI glue for the observability layer: `--trace-out` / `--metrics-out`
// flag handling and an RAII scope that installs a tracer for a run and
// writes the requested files when the run ends.  Shared by the benches and
// the `dcs` scenario driver so every binary spells the flags the same way.
#pragma once

#include <string>

#include "trace/trace.hpp"

namespace dcs::trace {

/// Output destinations for one observed run.  Empty string = not requested.
struct ObserveOptions {
  std::string trace_out;          // Chrome trace_event JSON file
  std::string metrics_out;        // plain-text metrics dump file
  std::string critical_path_out;  // plain-text critical-path report
  std::string bench_json;         // single-run dcs-bench-v1 JSON snapshot
  std::string bench_name = "dcs";  // "bench" field of the JSON snapshot

  bool enabled() const {
    return !trace_out.empty() || !metrics_out.empty() ||
           !critical_path_out.empty() || !bench_json.empty();
  }
};

/// Removes `--trace-out <file>`, `--metrics-out <file>`, `--critical-path
/// <file>` and `--bench-json <file>` from argv (shifting later arguments
/// down and decrementing argc) and returns the extracted values.  Call
/// before handing argv to another parser such as benchmark::Initialize.
ObserveOptions extract_observe_flags(int& argc, char** argv);

/// Observes one simulation run.  Construction resets the global metrics
/// registry (so the output stands alone) and, when a trace file was
/// requested, installs a tracer bound to `eng`.  Destruction uninstalls
/// the tracer and writes the requested files; failures to open a file are
/// reported on stderr but never abort the run.
///
/// Declare it after the engine and before the workload:
///
///   sim::Engine eng;
///   trace::ObservedRun observed(eng, opts);
///   ... build topology, spawn, eng.run() ...
class ObservedRun {
 public:
  ObservedRun(sim::Engine& eng, ObserveOptions opts);
  ~ObservedRun();
  ObservedRun(const ObservedRun&) = delete;
  ObservedRun& operator=(const ObservedRun&) = delete;

 private:
  ObserveOptions opts_;
  Tracer tracer_;
};

}  // namespace dcs::trace
