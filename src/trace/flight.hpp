// Flight recorder: always-on bounded recording plus post-mortem capture.
//
// Every other observability output in the repo (trace JSON, metrics dumps,
// critical-path reports, dcs-bench-v1) is written at the end of a healthy
// run.  When a request wedges on a lost credit, a lock cascade deadlocks,
// or an audit violation throws, the run dies with a one-line error and the
// context evaporates.  The FlightRecorder is the black box: while
// installed it keeps, per node, a bounded ring of compact structured
// records — virtual time, request (strand context), layer, opcode, two
// u64 arguments — fed from the existing DCS_TRACE_* sites and the DCS_LOG
// structured-log macro.  Old records age out; recording never allocates
// after the ring warms up and costs a few stores per site.  With no
// recorder (and no tracer) installed every site is one predictable branch,
// the same contract the tracer has always had.
//
// Trip conditions snapshot everything into a deterministic
// `dcs-postmortem-v1` JSON dump (docs/OBSERVABILITY.md):
//
//   audit     audit::OnViolation::kPostmortem routes the violation here
//             before AuditError propagates.
//   deadline  monitor::DeadlineWatchdog scans the in-flight request table
//             against a load-adjusted deadline (e-RDMA-Sync load signal).
//   stall     the recorder implements sim::StallHook: a virtual-time jump
//             past `stall_horizon` with stale in-flight requests, or an
//             unbounded run draining with live roots, trips a dump.
//
// A dump contains the ring contents for all nodes, a metrics registry
// snapshot, the in-flight request table with each request's partial
// critical path (per-Cost nanoseconds charged so far), and engine state
// (ready-ring/wheel/overflow occupancy, dispatch fingerprint).  All output
// is byte-deterministic for a given seed.  `dcs inspect` (trace/inspect)
// queries the dumps offline.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "sim/engine.hpp"
#include "sim/stall_hook.hpp"
#include "trace/trace.hpp"

namespace dcs::trace {

/// One ring record.  Layer/opcode must be string literals (same contract
/// as TraceEvent): the ring stores pointers, never copies.
struct FlightRecord {
  SimNanos time = 0;
  std::uint64_t request = 0;  // strand context at record time (0 untracked)
  const char* layer = "";
  const char* opcode = "";
  std::uint64_t a0 = 0;
  std::uint64_t a1 = 0;
  std::uint32_t node = 0;
  char kind = 'L';  // 'L' log, 'i' instant, 'S' span close, 'V' violation
};

struct FlightConfig {
  /// Records retained per node; older records age out (wraparound).
  std::size_t ring_capacity = 256;
  /// Virtual-time jump beyond which the engine reports on_time_jump; an
  /// in-flight request idle longer than this across the jump trips a dump.
  SimNanos stall_horizon = milliseconds(50);
  /// Directory for `<prefix>.<reason>.<n>.postmortem.json` dumps.  Empty:
  /// trips are counted and retained in memory but no file is written.
  std::string postmortem_dir{};
  std::string prefix = "dcs";
  /// Safety valve: dumps written per recorder lifetime.
  std::size_t max_dumps = 8;
  /// Sampled capture: keep every Nth offered log/instant/span record per
  /// node (1 = keep everything).  Violations, request closes and capture
  /// transitions are always kept.  `set_full_capture(true)` bypasses the
  /// period until capture is disarmed — the trigger-armed deep-capture
  /// path driven by obs::SloEngine burn-rate arming.
  std::size_t sample_period = 1;
};

class FlightRecorder final : public sim::StallHook {
 public:
  explicit FlightRecorder(sim::Engine& eng, FlightConfig config = {});
  ~FlightRecorder() override;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Makes this the process-wide recorder (at most one at a time) and
  /// installs the engine stall hook.  Only while the loop is not running.
  void install();
  void uninstall();
  bool installed() const;
  /// The installed recorder, or nullptr.
  static FlightRecorder* current();

  sim::Engine& engine() { return eng_; }
  SimNanos now() const { return eng_.now(); }
  const FlightConfig& config() const { return config_; }

  /// Flips sampled capture (config().sample_period) to full capture and
  /// back.  Idempotent; a real transition logs a `flight/capture.*` record
  /// (node 0) so dumps show exactly when deep capture was armed.  Driven
  /// deterministically in virtual time by obs::SloEngine burn-rate arming.
  void set_full_capture(bool on);
  bool full_capture() const { return full_capture_; }

  // --- recording (macros and trace.hpp detail shims call these) ---

  void log(const char* layer, const char* opcode, std::uint32_t node,
           std::uint64_t a0 = 0, std::uint64_t a1 = 0);
  void instant(const char* category, const char* name, std::uint32_t node,
               std::uint64_t id = 0);
  /// Span close: ring record plus a partial-critical-path charge when the
  /// span carried a Cost category and belongs to an in-flight request.
  void span_close(const TraceEvent& ev);
  /// Audit violation: ring record (node 0) ahead of any AuditError.
  void violation(const char* checker);

  std::uint64_t next_request_id() { return ++last_request_id_; }
  std::uint64_t next_span_id() { return ++last_span_id_; }
  void request_begin(std::uint64_t request, const char* name,
                     std::uint32_t node, std::uint64_t id);
  void request_end(std::uint64_t request, const char* name,
                   std::uint32_t node, std::uint64_t id);

  // --- in-flight request table ---

  struct InFlight {
    const char* name = "";
    std::uint64_t id = 0;
    std::uint32_t node = 0;
    SimNanos start = 0;
    SimNanos last_activity = 0;
    /// Partial critical path: nanoseconds charged per Cost category
    /// (index Cost-1) by spans closed so far.
    std::array<SimNanos, kCostCategories> cost_ns{};
  };
  const std::map<std::uint64_t, InFlight>& in_flight() const {
    return in_flight_;
  }

  // --- ring access (tests, dump writer) ---

  /// Nodes with at least one record, ascending.
  std::vector<std::uint32_t> nodes() const;
  /// Retained records for `node`, oldest first.
  std::vector<FlightRecord> records(std::uint32_t node) const;
  /// Total records ever kept for `node` (>= records().size()).
  std::uint64_t total_records(std::uint32_t node) const;
  /// Records offered for `node` including those dropped by sampling
  /// (>= total_records()).
  std::uint64_t offered_records(std::uint32_t node) const;

  // --- trips and dumps ---

  /// Snapshots state into a dcs-postmortem-v1 dump.  Writes
  /// `<dir>/<prefix>.<reason>.<n>.postmortem.json` when a dump directory is
  /// configured; always counts the trip and retains reason/detail.
  /// Recursive trips (a trip tripping a checker) are ignored.
  void trip(const char* reason, const std::string& detail);
  /// The dump writer, exposed for deterministic-output tests.
  void write_postmortem(std::ostream& os, const char* reason,
                        const std::string& detail) const;
  std::uint64_t trips() const { return trips_; }
  const std::string& last_reason() const { return last_reason_; }
  const std::string& last_detail() const { return last_detail_; }
  const std::vector<std::string>& dump_paths() const { return dump_paths_; }

  // --- sim::StallHook ---

  SimNanos stall_horizon() const override { return config_.stall_horizon; }
  void on_time_jump(SimNanos from, SimNanos to) override;
  void on_wedged(std::size_t live_roots) override;

 private:
  struct Ring {
    std::vector<FlightRecord> buf;  // capacity-sized once warm
    std::uint64_t total = 0;        // records kept (pushed into the ring)
    std::uint64_t offered = 0;      // records offered, kept or sampled away
  };

  void push(std::uint32_t node, const FlightRecord& rec);
  /// Push subject to the capture policy: drops all but every Nth offered
  /// record per node when sampling and not in full capture.
  void push_sampled(std::uint32_t node, const FlightRecord& rec);
  /// Refreshes last_activity for an in-flight request (any record counts).
  void touch(std::uint64_t request);

  sim::Engine& eng_;
  FlightConfig config_;
  std::map<std::uint32_t, Ring> rings_;
  std::map<std::uint64_t, InFlight> in_flight_;
  std::uint64_t last_request_id_ = 0;
  std::uint64_t last_span_id_ = 0;
  std::uint64_t trips_ = 0;
  bool full_capture_ = false;
  bool tripping_ = false;
  std::string last_reason_;
  std::string last_detail_;
  std::vector<std::string> dump_paths_;
};

}  // namespace dcs::trace
