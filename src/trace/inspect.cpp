#include "trace/inspect.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dcs::trace::inspect {

// --- JSON parser ---

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return value;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("JSON error at offset " + std::to_string(pos_) +
                             ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      Json v;
      v.type = Json::Type::kString;
      v.str = parse_string();
      return v;
    }
    if (consume_word("true")) {
      Json v;
      v.type = Json::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_word("false")) {
      Json v;
      v.type = Json::Type::kBool;
      return v;
    }
    if (consume_word("null")) return Json{};
    return parse_number();
  }

  Json parse_object() {
    Json v;
    v.type = Json::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.fields.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json parse_array() {
    Json v;
    v.type = Json::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          // Our writers never emit \u; decode Latin-1 range, else '?'.
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          out.push_back(code < 0x100 ? static_cast<char>(code) : '?');
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    Json v;
    v.type = Json::Type::kNumber;
    v.raw = std::string(text_.substr(start, pos_ - start));
    try {
      v.number = std::stod(v.raw);
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Json* Json::find(std::string_view key) const {
  for (const auto& [name, value] : fields) {
    if (name == key) return &value;
  }
  return nullptr;
}

double Json::num_or(double fallback) const {
  return type == Type::kNumber ? number : fallback;
}

std::uint64_t Json::u64_or(std::uint64_t fallback) const {
  if (type != Type::kNumber) return fallback;
  if (!raw.empty() && raw.find_first_of(".eE") == std::string::npos) {
    try {
      return std::stoull(raw);
    } catch (const std::exception&) {
    }
  }
  return number < 0 ? fallback : static_cast<std::uint64_t>(number);
}

std::string Json::str_or(std::string fallback) const {
  return type == Type::kString ? str : std::move(fallback);
}

Json parse_json(std::string_view text) { return Parser(text).parse(); }

// --- loading and normalization ---

namespace {

std::uint64_t field_u64(const Json& obj, std::string_view key,
                        std::uint64_t fallback = 0) {
  const Json* v = obj.find(key);
  return v != nullptr ? v->u64_or(fallback) : fallback;
}

std::string field_str(const Json& obj, std::string_view key) {
  const Json* v = obj.find(key);
  return v != nullptr ? v->str_or("") : "";
}

void sort_entries(std::vector<Entry>& entries) {
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.time != b.time ? a.time < b.time
                                             : a.node < b.node;
                   });
}

Document load_postmortem(Document doc) {
  const Json& root = doc.root;
  doc.kind = Document::Kind::kPostmortem;
  doc.reason = field_str(root, "reason");
  doc.detail = field_str(root, "detail");
  doc.now_ns = field_u64(root, "now_ns");
  if (const Json* nodes = root.find("nodes")) {
    for (const Json& node_obj : nodes->items) {
      const auto node = static_cast<std::uint32_t>(field_u64(node_obj, "node"));
      const Json* records = node_obj.find("records");
      if (records == nullptr) continue;
      for (const Json& rec : records->items) {
        Entry e;
        e.time = field_u64(rec, "t");
        e.node = node;
        e.request = field_u64(rec, "request");
        e.layer = field_str(rec, "layer");
        e.op = field_str(rec, "op");
        const std::string kind = field_str(rec, "kind");
        e.kind = kind.empty() ? 'L' : kind[0];
        e.a0 = field_u64(rec, "a0");
        e.a1 = field_u64(rec, "a1");
        if (e.kind == 'S') e.dur = e.a1;
        doc.entries.push_back(std::move(e));
      }
    }
  }
  if (const Json* requests = root.find("requests")) {
    for (const Json& req : requests->items) {
      RequestRow row;
      row.request = field_u64(req, "request");
      row.name = field_str(req, "name");
      row.node = static_cast<std::uint32_t>(field_u64(req, "node"));
      row.id = field_u64(req, "id");
      row.start_ns = field_u64(req, "start_ns");
      row.age_ns = field_u64(req, "age_ns");
      row.last_activity_ns = field_u64(req, "last_activity_ns");
      row.in_flight = true;
      if (const Json* costs = req.find("critical_path_ns")) {
        for (const auto& [cost, value] : costs->fields) {
          row.cost_ns.emplace_back(cost, value.u64_or(0));
        }
      }
      doc.requests.push_back(std::move(row));
    }
  }
  sort_entries(doc.entries);
  return doc;
}

Document load_trace(Document doc) {
  doc.kind = Document::Kind::kTrace;
  const Json* events = doc.root.find("traceEvents");
  for (const Json& ev : events->items) {
    const std::string ph = field_str(ev, "ph");
    if (ph != "X" && ph != "i") continue;
    Entry e;
    // Chrome ts/dur are microseconds with fixed 3-decimal precision.
    const Json* ts = ev.find("ts");
    e.time = static_cast<SimNanos>(
        std::llround((ts != nullptr ? ts->num_or(0) : 0) * 1000.0));
    const Json* dur = ev.find("dur");
    e.dur = static_cast<SimNanos>(
        std::llround((dur != nullptr ? dur->num_or(0) : 0) * 1000.0));
    e.node = static_cast<std::uint32_t>(field_u64(ev, "pid"));
    e.layer = field_str(ev, "cat");
    e.op = field_str(ev, "name");
    e.kind = ph == "i" ? 'i' : 'S';
    if (const Json* args = ev.find("args")) {
      e.request = field_u64(*args, "request");
      e.a0 = field_u64(*args, "id");
    }
    // The writer renders phase-'R' request roots as spans in category
    // "request"; recover them for --top and request summaries.
    if (e.layer == "request" && e.kind == 'S' && e.request != 0) {
      e.kind = 'R';
      RequestRow row;
      row.request = e.request;
      row.name = e.op;
      row.node = e.node;
      row.id = e.a0;
      row.start_ns = e.time;
      row.age_ns = e.dur;
      row.last_activity_ns = e.time + e.dur;
      doc.requests.push_back(std::move(row));
    }
    doc.now_ns = std::max(doc.now_ns, e.time + e.dur);
    doc.entries.push_back(std::move(e));
  }
  sort_entries(doc.entries);
  std::sort(doc.requests.begin(), doc.requests.end(),
            [](const RequestRow& a, const RequestRow& b) {
              return a.request < b.request;
            });
  return doc;
}

}  // namespace

Document load(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  Document doc;
  doc.path = path;
  try {
    doc.root = parse_json(buffer.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
  if (doc.root.type != Json::Type::kObject) {
    throw std::runtime_error(path + ": top-level JSON object expected");
  }
  const std::string schema = field_str(doc.root, "schema");
  if (schema == "dcs-postmortem-v1") return load_postmortem(std::move(doc));
  if (doc.root.find("traceEvents") != nullptr) {
    return load_trace(std::move(doc));
  }
  throw std::runtime_error(
      path + ": neither a dcs-postmortem-v1 dump nor a Chrome trace "
             "(schema: \"" + schema + "\")");
}

// --- queries ---

namespace {

bool matches(const Entry& e, const Options& opts) {
  if (opts.node && e.node != *opts.node) return false;
  if (!opts.layer.empty() && e.layer != opts.layer) return false;
  if (opts.request && e.request != *opts.request) return false;
  if (opts.from_ns && e.time < *opts.from_ns) return false;
  if (opts.to_ns && e.time > *opts.to_ns) return false;
  return true;
}

void print_entries(std::ostream& out, const std::vector<Entry>& entries) {
  out << "  time_ns       node  kind  layer.op                    "
         "request  a0            a1\n";
  for (const Entry& e : entries) {
    char line[256];
    const std::string op = e.layer + "." + e.op;
    std::snprintf(line, sizeof line,
                  "  %-12llu  %-4u  %c     %-26s  %-7llu  %-12llu  %llu",
                  static_cast<unsigned long long>(e.time), e.node, e.kind,
                  op.c_str(), static_cast<unsigned long long>(e.request),
                  static_cast<unsigned long long>(e.a0),
                  static_cast<unsigned long long>(e.a1));
    out << line << '\n';
  }
}

void print_request_row(std::ostream& out, const RequestRow& row) {
  out << "request #" << row.request << " \"" << row.name << "\" (node "
      << row.node << ", id " << row.id << "): start " << row.start_ns
      << "ns, " << (row.in_flight ? "in flight " : "completed in ")
      << row.age_ns << "ns, last activity " << row.last_activity_ns << "ns";
  if (!row.cost_ns.empty()) {
    out << "\n  partial critical path:";
    SimNanos attributed = 0;
    for (const auto& [cost, ns] : row.cost_ns) {
      if (cost == "attributed") {
        attributed = ns;
        continue;
      }
      if (ns != 0) out << " " << cost << "=" << ns << "ns";
    }
    out << " (attributed " << attributed << "ns of " << row.age_ns << "ns)";
  }
  out << '\n';
}

int run_self_check(const Document& doc, std::ostream& out,
                   std::ostream& err) {
  std::vector<std::string> problems;
  if (doc.kind != Document::Kind::kPostmortem) {
    problems.push_back("not a dcs-postmortem-v1 dump");
  } else {
    for (const char* key : {"reason", "detail", "now_ns", "engine",
                            "metrics", "requests", "nodes", "config"}) {
      if (doc.root.find(key) == nullptr) {
        problems.push_back(std::string("missing field \"") + key + "\"");
      }
    }
    if (const Json* engine = doc.root.find("engine")) {
      for (const char* key :
           {"now_ns", "events_dispatched", "dispatch_fingerprint",
            "ready_ring", "wheel_timers", "overflow_timers", "live_roots"}) {
        if (engine->find(key) == nullptr) {
          problems.push_back(std::string("engine missing \"") + key + "\"");
        }
      }
    }
    const std::uint64_t capacity =
        doc.root.find("config") != nullptr
            ? field_u64(*doc.root.find("config"), "ring_capacity")
            : 0;
    if (const Json* nodes = doc.root.find("nodes")) {
      for (const Json& node_obj : nodes->items) {
        const std::uint64_t node = field_u64(node_obj, "node");
        const Json* records = node_obj.find("records");
        if (records == nullptr) {
          problems.push_back("node " + std::to_string(node) +
                             " has no records array");
          continue;
        }
        if (capacity != 0 && records->items.size() > capacity) {
          problems.push_back("node " + std::to_string(node) +
                             " retains more records than ring_capacity");
        }
        if (records->items.size() > field_u64(node_obj, "logged")) {
          problems.push_back("node " + std::to_string(node) +
                             " retains more records than were logged");
        }
        SimNanos prev = 0;
        for (const Json& rec : records->items) {
          const SimNanos t = field_u64(rec, "t");
          if (t < prev) {
            problems.push_back("node " + std::to_string(node) +
                               " records not time-ordered");
            break;
          }
          prev = t;
        }
      }
    }
  }
  if (!problems.empty()) {
    err << "self-check FAILED: " << doc.path << '\n';
    for (const std::string& p : problems) err << "  " << p << '\n';
    return 1;
  }
  std::size_t record_count = 0;
  std::vector<std::uint32_t> node_list;
  for (const Entry& e : doc.entries) {
    ++record_count;
    if (node_list.empty() || node_list.back() != e.node) {
      if (std::find(node_list.begin(), node_list.end(), e.node) ==
          node_list.end()) {
        node_list.push_back(e.node);
      }
    }
  }
  out << "self-check OK: " << doc.path << " (reason " << doc.reason << ", "
      << node_list.size() << " node(s), " << record_count << " record(s), "
      << doc.requests.size() << " in-flight request(s))\n";
  return 0;
}

/// Flattens metrics for diffing: counters/gauges to their value,
/// distributions/histograms to their count.
void flatten_metrics(const Json* metrics,
                     std::vector<std::pair<std::string, double>>& out) {
  if (metrics == nullptr || metrics->type != Json::Type::kObject) return;
  for (const auto& [name, value] : metrics->fields) {
    if (value.type == Json::Type::kNumber) {
      out.emplace_back(name, value.number);
    } else if (value.type == Json::Type::kObject) {
      if (const Json* count = value.find("count")) {
        out.emplace_back(name + ".count", count->num_or(0));
      }
    }
  }
}

int run_diff(const Document& a, const Document& b, std::ostream& out) {
  out << "diff " << a.path << " -> " << b.path << '\n';
  std::size_t changes = 0;
  const auto line = [&](const std::string& text) {
    out << "  " << text << '\n';
    ++changes;
  };
  if (a.reason != b.reason) {
    line("reason: " + a.reason + " -> " + b.reason);
  }
  if (a.now_ns != b.now_ns) {
    line("now_ns: " + std::to_string(a.now_ns) + " -> " +
         std::to_string(b.now_ns));
  }
  const Json* ea = a.root.find("engine");
  const Json* eb = b.root.find("engine");
  if (ea != nullptr && eb != nullptr) {
    for (const auto& [key, va] : ea->fields) {
      const Json* vb = eb->find(key);
      if (vb == nullptr) continue;
      if (va.type == Json::Type::kNumber && vb->type == Json::Type::kNumber) {
        if (va.raw != vb->raw) {
          line("engine." + key + ": " + va.raw + " -> " + vb->raw);
        }
      } else if (va.str != vb->str) {
        line("engine." + key + ": " + va.str + " -> " + vb->str);
      }
    }
  }
  std::vector<std::pair<std::string, double>> ma, mb;
  flatten_metrics(a.root.find("metrics"), ma);
  flatten_metrics(b.root.find("metrics"), mb);
  for (const auto& [name, va] : ma) {
    const auto it = std::find_if(mb.begin(), mb.end(), [&n = name](
                                     const auto& kv) { return kv.first == n; });
    if (it == mb.end()) {
      line("metric " + name + ": only in first");
    } else if (it->second != va) {
      char delta[64];
      std::snprintf(delta, sizeof delta, "%g -> %g (%+g)", va, it->second,
                    it->second - va);
      line("metric " + name + ": " + delta);
    }
  }
  for (const auto& [name, vb] : mb) {
    if (std::find_if(ma.begin(), ma.end(), [&n = name](const auto& kv) {
          return kv.first == n;
        }) == ma.end()) {
      line("metric " + name + ": only in second");
    }
  }
  for (const RequestRow& ra : a.requests) {
    const auto it = std::find_if(
        b.requests.begin(), b.requests.end(),
        [&](const RequestRow& rb) { return rb.request == ra.request; });
    if (it == b.requests.end()) {
      line("request #" + std::to_string(ra.request) + " (" + ra.name +
           "): resolved (only in first)");
    } else if (it->age_ns != ra.age_ns) {
      line("request #" + std::to_string(ra.request) + " (" + ra.name +
           "): age " + std::to_string(ra.age_ns) + "ns -> " +
           std::to_string(it->age_ns) + "ns");
    }
  }
  for (const RequestRow& rb : b.requests) {
    if (std::find_if(a.requests.begin(), a.requests.end(),
                     [&](const RequestRow& ra) {
                       return ra.request == rb.request;
                     }) == a.requests.end()) {
      line("request #" + std::to_string(rb.request) + " (" + rb.name +
           "): new (only in second)");
    }
  }
  if (changes == 0) out << "  (no differences)\n";
  return 0;
}

}  // namespace

int run(const std::string& file, const Options& opts, std::ostream& out,
        std::ostream& err) {
  Document doc;
  try {
    doc = load(file);
  } catch (const std::exception& e) {
    err << "inspect: " << e.what() << '\n';
    return 2;
  }
  if (opts.self_check) return run_self_check(doc, out, err);
  if (!opts.diff_path.empty()) {
    try {
      const Document other = load(opts.diff_path);
      return run_diff(doc, other, out);
    } catch (const std::exception& e) {
      err << "inspect: " << e.what() << '\n';
      return 2;
    }
  }

  if (doc.kind == Document::Kind::kPostmortem) {
    out << "postmortem " << doc.path << "\n  reason: " << doc.reason
        << "\n  detail: " << doc.detail << "\n  now_ns: " << doc.now_ns
        << '\n';
  } else {
    out << "trace " << doc.path << " (" << doc.entries.size()
        << " events, end " << doc.now_ns << "ns)\n";
  }

  if (opts.timeline) {
    // Cross-node timeline of one request: every record any node retained
    // for it, merged in time order.
    const auto it = std::find_if(
        doc.requests.begin(), doc.requests.end(),
        [&](const RequestRow& r) { return r.request == *opts.timeline; });
    if (it != doc.requests.end()) print_request_row(out, *it);
    std::vector<Entry> selected;
    std::vector<std::uint32_t> nodes_seen;
    for (const Entry& e : doc.entries) {
      if (e.request != *opts.timeline) continue;
      if (std::find(nodes_seen.begin(), nodes_seen.end(), e.node) ==
          nodes_seen.end()) {
        nodes_seen.push_back(e.node);
      }
      selected.push_back(e);
    }
    out << "timeline of request #" << *opts.timeline << ": "
        << selected.size() << " record(s) across " << nodes_seen.size()
        << " node(s)\n";
    print_entries(out, selected);
    return 0;
  }

  if (opts.top > 0) {
    std::vector<RequestRow> rows = doc.requests;
    std::stable_sort(rows.begin(), rows.end(),
                     [](const RequestRow& a, const RequestRow& b) {
                       return a.age_ns > b.age_ns;
                     });
    if (rows.size() > opts.top) rows.resize(opts.top);
    out << "top " << rows.size() << " slowest request(s)"
        << (doc.kind == Document::Kind::kPostmortem ? " (in flight)" : "")
        << ":\n";
    for (const RequestRow& row : rows) print_request_row(out, row);
    return 0;
  }

  std::vector<Entry> selected;
  for (const Entry& e : doc.entries) {
    if (matches(e, opts)) selected.push_back(e);
  }
  out << selected.size() << " record(s)";
  if (selected.size() != doc.entries.size()) {
    out << " (of " << doc.entries.size() << ")";
  }
  out << ":\n";
  print_entries(out, selected);
  if (doc.kind == Document::Kind::kPostmortem && !doc.requests.empty() &&
      !opts.node && !opts.request && opts.layer.empty()) {
    out << "in-flight requests:\n";
    for (const RequestRow& row : doc.requests) print_request_row(out, row);
  }
  return 0;
}

}  // namespace dcs::trace::inspect
