// STORM-like query-processing middleware (the application of Figure 3b).
//
// STORM is a middleware for SQL-style select/project queries over record
// sets partitioned across cluster nodes.  A query proceeds in two planes:
//
//   control plane:  catalog lookup, query registration, per-batch transfer
//                   progress state — small, frequent, shared-state accesses.
//   data plane:     partition scans (CPU per record) and result batches
//                   shipped to the coordinator over TCP.
//
// Two builds of the control plane are provided, identical everywhere else:
//   kSockets  every state interaction is a TCP round trip to the metadata
//             service process (traditional STORM), and
//   kDdss     state lives in the Distributed Data Sharing Substrate and is
//             accessed with one-sided get/put (STORM-DDSS, [20]).
//
// Figure 3b compares query execution time of the two as the record count
// grows; the paper reports ~19 % improvement for the DDSS build.
#pragma once

#include <vector>

#include "ddss/ddss.hpp"
#include "sockets/tcp.hpp"

namespace dcs::storm {

using fabric::NodeId;

enum class ControlPlane { kSockets, kDdss };

const char* to_string(ControlPlane plane);

struct StormConfig {
  std::size_t record_bytes = 100;
  SimNanos per_record_cpu = nanoseconds(120);   // scan + predicate eval
  double selectivity = 0.02;                    // fraction of records hit
  std::size_t batch_records = 2048;             // result shipping granularity
  std::uint16_t data_port = 7000;
  std::uint16_t meta_port = 7001;
  SimNanos meta_service_cpu = microseconds(25); // catalog/state handling
};

struct QueryResult {
  std::uint64_t records_scanned = 0;
  std::uint64_t records_returned = 0;
  SimNanos elapsed = 0;
  std::uint64_t control_ops = 0;
};

class StormCluster {
 public:
  /// `coordinator` runs queries; `meta_node` hosts the catalog service (or
  /// the DDSS allocations); `data_nodes` hold the partitions.
  StormCluster(verbs::Network& net, sockets::TcpNetwork& tcp,
               ControlPlane plane, NodeId coordinator, NodeId meta_node,
               std::vector<NodeId> data_nodes, StormConfig config = {});

  /// Spawns data-node daemons, the metadata service (sockets build), and
  /// the DDSS substrate daemons (DDSS build).  Call once.
  sim::Task<void> start();

  /// Runs one select query over `total_records` spread evenly across the
  /// data nodes.  Single outstanding query per cluster (as in the bench).
  sim::Task<QueryResult> run_query(std::uint64_t total_records);

  ControlPlane plane() const { return plane_; }

 private:
  /// One control-plane interaction from `actor` (catalog read, progress
  /// update, ...).  Socket build: TCP round trip to the metadata process.
  /// DDSS build: one-sided put to the shared state.
  sim::Task<void> control_op(NodeId actor);

  sim::Task<void> metadata_service();
  sim::Task<void> data_daemon(NodeId node);

  verbs::Network& net_;
  sockets::TcpNetwork& tcp_;
  ControlPlane plane_;
  NodeId coordinator_;
  NodeId meta_;
  std::vector<NodeId> data_nodes_;
  StormConfig config_;

  std::unique_ptr<ddss::Ddss> ddss_;
  std::vector<ddss::Allocation> state_allocs_;  // one per cluster node
  std::map<NodeId, sockets::TcpConnection*> meta_conns_;
  std::uint64_t control_ops_ = 0;
  bool started_ = false;
};

}  // namespace dcs::storm
