#include "storm/storm.hpp"

#include <algorithm>

#include "trace/trace.hpp"
#include "verbs/wire.hpp"

namespace dcs::storm {

const char* to_string(ControlPlane plane) {
  return plane == ControlPlane::kSockets ? "STORM" : "STORM-DDSS";
}

StormCluster::StormCluster(verbs::Network& net, sockets::TcpNetwork& tcp,
                           ControlPlane plane, NodeId coordinator,
                           NodeId meta_node, std::vector<NodeId> data_nodes,
                           StormConfig config)
    : net_(net),
      tcp_(tcp),
      plane_(plane),
      coordinator_(coordinator),
      meta_(meta_node),
      data_nodes_(std::move(data_nodes)),
      config_(config) {
  DCS_CHECK(!data_nodes_.empty());
}

sim::Task<void> StormCluster::start() {
  DCS_CHECK(!started_);
  started_ = true;
  auto& eng = net_.fabric().engine();
  for (const NodeId n : data_nodes_) {
    eng.spawn(data_daemon(n));
    net_.fabric().node(n).add_service_threads(1);
  }
  if (plane_ == ControlPlane::kSockets) {
    eng.spawn(metadata_service());
    net_.fabric().node(meta_).add_service_threads(1);
    co_return;
  }
  // DDSS build: shared query/progress state hosted on the metadata node.
  ddss_ = std::make_unique<ddss::Ddss>(net_);
  ddss_->start();
  auto client = ddss_->client(coordinator_);
  for (std::size_t i = 0; i < data_nodes_.size() + 1; ++i) {
    state_allocs_.push_back(co_await client.allocate(
        256, ddss::Coherence::kVersion, ddss::Placement::kRemote));
  }
}

sim::Task<void> StormCluster::metadata_service() {
  // Classic user-space catalog/state daemon: every interaction costs a TCP
  // round trip plus schedulable CPU on the metadata host.
  for (;;) {
    auto* conn = co_await tcp_.accept(meta_, config_.meta_port);
    net_.fabric().engine().spawn(
        [](StormCluster& self, sockets::TcpConnection* c) -> sim::Task<void> {
          for (;;) {
            auto req = co_await c->recv(self.meta_);
            co_await self.net_.fabric().node(self.meta_).execute(
                self.config_.meta_service_cpu);
            co_await c->send(self.meta_, verbs::Encoder().u8(1).take());
            (void)req;
          }
        }(*this, conn));
  }
}

sim::Task<void> StormCluster::control_op(NodeId actor) {
  ++control_ops_;
  if (plane_ == ControlPlane::kSockets) {
    auto it = meta_conns_.find(actor);
    if (it == meta_conns_.end()) {
      auto* conn = co_await tcp_.connect(actor, meta_, config_.meta_port);
      it = meta_conns_.emplace(actor, conn).first;
    }
    co_await it->second->send(actor, verbs::Encoder().u32(0xC0).take());
    (void)co_await it->second->recv(actor);
    co_return;
  }
  // DDSS: one-sided put into the actor's state allocation.
  auto client = ddss_->client(actor);
  const std::size_t slot =
      actor == coordinator_
          ? data_nodes_.size()
          : static_cast<std::size_t>(
                std::find(data_nodes_.begin(), data_nodes_.end(), actor) -
                data_nodes_.begin());
  std::vector<std::byte> state(64);
  co_await client.put(state_allocs_.at(slot), state);
}

sim::Task<void> StormCluster::data_daemon(NodeId node) {
  auto& fab = net_.fabric();
  for (;;) {
    auto* conn = co_await tcp_.accept(node, config_.data_port);
    auto query = co_await conn->recv_msg(node);
    // Scan, control ops and result shipping all happen on behalf of the
    // query that arrived in this message.
    trace::AdoptContext adopted(query.ctx);
    verbs::Decoder dec(query.payload);
    const std::uint64_t records = dec.u64();

    // Register this node's participation in the shared query state.
    co_await control_op(node);

    const auto hits = static_cast<std::uint64_t>(
        static_cast<double>(records) * config_.selectivity);
    std::uint64_t scanned = 0;
    std::uint64_t shipped = 0;
    while (scanned < records) {
      const std::uint64_t batch =
          std::min<std::uint64_t>(config_.batch_records, records - scanned);
      // Scan the batch.
      co_await fab.node(node).execute(batch * config_.per_record_cpu);
      scanned += batch;
      // Publish transfer progress (per-batch shared-state update).
      co_await control_op(node);
      // Ship this batch's matching records.
      const std::uint64_t batch_hits =
          std::min(hits - shipped,
                   static_cast<std::uint64_t>(static_cast<double>(batch) *
                                              config_.selectivity) +
                       1);
      shipped += batch_hits;
      co_await conn->send(
          node, verbs::Encoder().u64(batch_hits).u64(scanned == records).take());
      // Model the result payload on the wire.
      if (batch_hits > 0) {
        co_await fab.tcp_wire_transfer(node, coordinator_,
                                       batch_hits * config_.record_bytes);
      }
    }
  }
}

sim::Task<QueryResult> StormCluster::run_query(std::uint64_t total_records) {
  DCS_CHECK_MSG(started_, "StormCluster::start not awaited");
  auto& eng = net_.fabric().engine();
  const auto t0 = eng.now();
  const auto ops0 = control_ops_;

  // Catalog lookup + query registration.
  co_await control_op(coordinator_);
  co_await control_op(coordinator_);

  const std::uint64_t per_node = total_records / data_nodes_.size();
  std::uint64_t remainder = total_records % data_nodes_.size();
  QueryResult result;

  std::vector<sim::Task<void>> partitions;
  partitions.reserve(data_nodes_.size());
  for (const NodeId n : data_nodes_) {
    const std::uint64_t extra = remainder > 0 ? 1 : 0;
    if (remainder > 0) --remainder;
    partitions.push_back([](StormCluster& self, NodeId node,
                            std::uint64_t records,
                            QueryResult& res) -> sim::Task<void> {
      auto* conn =
          co_await self.tcp_.connect(self.coordinator_, node,
                                     self.config_.data_port);
      co_await conn->send(self.coordinator_,
                          verbs::Encoder().u64(records).take());
      for (;;) {
        auto batch = co_await conn->recv(self.coordinator_);
        verbs::Decoder dec(batch);
        res.records_returned += dec.u64();
        if (dec.u64() != 0) break;  // final batch flag
      }
      res.records_scanned += records;
    }(*this, n, per_node + extra, result));
  }
  co_await eng.when_all(std::move(partitions));

  // Mark the query complete in the shared state.
  co_await control_op(coordinator_);

  result.elapsed = eng.now() - t0;
  result.control_ops = control_ops_ - ops0;
  co_return result;
}

}  // namespace dcs::storm
