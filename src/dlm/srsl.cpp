#include "dlm/srsl.hpp"

#include "audit/audit.hpp"
#include "trace/trace.hpp"
#include "verbs/wire.hpp"

namespace dcs::dlm {

namespace {
enum class Req : std::uint8_t { kLock = 1, kUnlock = 2 };

struct SrslMetrics {
  trace::Counter& locks = reg().counter("dlm.srsl.lock_acquires");
  trace::Counter& unlocks = reg().counter("dlm.srsl.unlocks");
  trace::Counter& requests = reg().counter("dlm.srsl.server_requests");
  trace::Distribution& lock_latency =
      reg().distribution("dlm.srsl.lock_latency_ns");

  static trace::Registry& reg() { return trace::Registry::global(); }
};

SrslMetrics& metrics() {
  static SrslMetrics m;
  return m;
}

std::uint64_t holder_key(NodeId node, LockId id) {
  return (static_cast<std::uint64_t>(node) << 32) | id;
}
}  // namespace

SrslLockManager::SrslLockManager(verbs::Network& net, NodeId server)
    : net_(net), server_(server) {}

void SrslLockManager::start() {
  DCS_CHECK(!started_);
  started_ = true;
  net_.fabric().engine().spawn(server_loop());
  net_.fabric().node(server_).add_service_threads(1);
}

sim::Task<void> SrslLockManager::server_loop() {
  auto& hca = net_.hca(server_);
  for (;;) {
    verbs::Message msg = co_await hca.recv(tags::kSrslRequest);
    // Home-node processing is charged to the requester's trace context.
    trace::AdoptContext adopted(msg.ctx);
    ++requests_served_;
    metrics().requests.add();
    verbs::Decoder dec(msg.payload);
    const auto req = static_cast<Req>(dec.u8());
    const LockId id = dec.u32();
    const auto mode = static_cast<LockMode>(dec.u8());
    LockState& st = locks_[id];

    switch (req) {
      case Req::kLock: {
        st.queue.push_back(Waiter{msg.src, mode});
        co_await grant_from_queue(id, st);
        break;
      }
      case Req::kUnlock: {
        const auto it = held_.find(holder_key(msg.src, id));
        DCS_CHECK_MSG(it != held_.end(), "SRSL unlock without hold");
        if (it->second == LockMode::kExclusive) {
          DCS_CHECK(st.exclusive_held && st.exclusive_holder == msg.src);
          st.exclusive_held = false;
        } else {
          DCS_CHECK(st.shared_holders > 0);
          --st.shared_holders;
        }
        held_.erase(it);
        if (auto* a = audit::Auditor::current()) {
          a->lock_released(this, "srsl", id, msg.src);
        }
        co_await grant_from_queue(id, st);
        break;
      }
    }
  }
}

sim::Task<void> SrslLockManager::grant_from_queue(LockId id, LockState& st) {
  // FIFO with shared batching: grant the head; if it is shared, keep
  // granting consecutive shared waiters.
  while (!st.queue.empty() && !st.exclusive_held) {
    const Waiter w = st.queue.front();
    if (w.mode == LockMode::kExclusive) {
      if (st.shared_holders > 0) break;
      st.queue.pop_front();
      st.exclusive_held = true;
      st.exclusive_holder = w.node;
      held_[holder_key(w.node, id)] = LockMode::kExclusive;
      if (auto* a = audit::Auditor::current()) {
        a->lock_granted(this, "srsl", id, w.node, /*exclusive=*/true);
      }
      co_await send_grant(w.node, id);
      break;
    }
    st.queue.pop_front();
    ++st.shared_holders;
    held_[holder_key(w.node, id)] = LockMode::kShared;
    if (auto* a = audit::Auditor::current()) {
      a->lock_granted(this, "srsl", id, w.node, /*exclusive=*/false);
    }
    co_await send_grant(w.node, id);
  }
}

sim::Task<void> SrslLockManager::send_grant(NodeId to, LockId id) {
  co_await net_.hca(server_).send(to, tags::kSrslGrant + id,
                                  verbs::Encoder().u32(id).take());
}

sim::Task<void> SrslLockManager::lock(NodeId self, LockId id, LockMode mode) {
  DCS_CHECK(id < tags::kTagStride);
  metrics().locks.add();
  DCS_TRACE_COST_SPAN(trace::Cost::kLockWait, "dlm", "lock", self, id,
                      mode == LockMode::kShared ? "SRSL/shared"
                                                : "SRSL/exclusive");
  const SimNanos t0 = net_.fabric().engine().now();
  auto& hca = net_.hca(self);
  verbs::Encoder req;
  req.u8(static_cast<std::uint8_t>(Req::kLock))
      .u32(id)
      .u8(static_cast<std::uint8_t>(mode));
  co_await hca.send(server_, tags::kSrslRequest, req.take());
  (void)co_await hca.recv(tags::kSrslGrant + id);
  metrics().lock_latency.record_ns(net_.fabric().engine().now() - t0);
}

sim::Task<void> SrslLockManager::unlock(NodeId self, LockId id) {
  metrics().unlocks.add();
  DCS_TRACE_SPAN("dlm", "unlock", self, id, "SRSL");
  auto& hca = net_.hca(self);
  verbs::Encoder req;
  req.u8(static_cast<std::uint8_t>(Req::kUnlock))
      .u32(id)
      .u8(0);
  co_await hca.send(server_, tags::kSrslRequest, req.take());
}

}  // namespace dcs::dlm
