// N-CoSED — Network-based Combined Shared/Exclusive Distributed locking,
// the paper's design (Section 4.2, Figure 4 / [14]).
//
// Per lock, the home node hosts:
//   W0 (64-bit lock window) = [exclusive-tail(+1) : 32 | shared-request
//       count since the last exclusive enqueue : 32]
//   W1 (64-bit)             = shared-release count for the current epoch
//
// Protocol:
//   shared lock      FAA(W0, +1).  If the returned tail is 0 the lock is
//                    granted immediately (one atomic, no host CPU anywhere);
//                    otherwise notify the tail node and await its cascading
//                    grant at release time.
//   shared unlock    FAA(W1, +1) — purely one-sided.
//   exclusive lock   CAS loop swapping W0 to {self, 0}; the captured old
//                    value names the previous tail and the count C of shared
//                    requests in that epoch.  Queue behind the previous tail
//                    (direct handoff message at its release), then drain the
//                    C shared holders by polling W1 one-sidedly, reset W1,
//                    and enter.
//   exclusive unlock If the tail is still us: CAS the tail out, then grant
//                    every shared waiter that queued behind us in one batch
//                    (the shared cascade of Figure 5a).  If a newer
//                    exclusive closed our epoch: grant our epoch's shared
//                    waiters, then hand off to that successor.
//
// All lock-word manipulation is one-sided (CAS/FAA/read/write); messages
// appear only for waiter notification and cascading grants, exactly as in
// the paper.
#pragma once

#include <optional>
#include <unordered_map>

#include "dlm/lock_manager.hpp"

namespace dcs::dlm {

class NcosedLockManager final : public LockManager {
 public:
  NcosedLockManager(verbs::Network& net, NodeId home,
                    std::size_t max_locks = 64,
                    SimNanos drain_poll_interval = microseconds(3));
  ~NcosedLockManager() override;

  sim::Task<void> lock(NodeId self, LockId id, LockMode mode) override;
  sim::Task<void> unlock(NodeId self, LockId id) override;
  const char* name() const override { return "N-CoSED"; }

  std::uint64_t drain_polls() const { return drain_polls_; }

 private:
  static constexpr std::size_t kEntryBytes = 16;  // W0 + W1

  sim::Task<void> lock_shared_impl(NodeId self, LockId id);
  sim::Task<void> lock_exclusive_impl(NodeId self, LockId id);
  sim::Task<void> unlock_shared_impl(NodeId self, LockId id);
  sim::Task<void> unlock_exclusive_impl(NodeId self, LockId id);
  /// Receives `count` shared-waiter notifications and grants them in a batch.
  sim::Task<void> grant_shared_batch(NodeId self, LockId id,
                                     std::uint32_t count);
  /// One-sided poll of W1 until `target` shared releases have landed.
  /// `observed` seeds the poll with a W1 value already fetched (the CAS+read
  /// acquisition batch piggybacks one), saving the first poll round trip.
  sim::Task<void> drain_shared(NodeId self, LockId id, std::uint32_t target,
                               std::optional<std::uint64_t> observed);

  std::size_t w0_off(LockId id) const { return id * kEntryBytes; }
  std::size_t w1_off(LockId id) const { return id * kEntryBytes + 8; }

  static std::uint32_t tail_of(std::uint64_t w0) {
    return static_cast<std::uint32_t>(w0 >> 32);
  }
  static std::uint32_t count_of(std::uint64_t w0) {
    return static_cast<std::uint32_t>(w0 & 0xFFFFFFFFu);
  }
  static std::uint64_t make_w0(std::uint32_t tail, std::uint32_t count) {
    return (static_cast<std::uint64_t>(tail) << 32) | count;
  }

  verbs::Network& net_;
  NodeId home_;
  std::size_t max_locks_;
  SimNanos poll_interval_;
  verbs::RemoteRegion table_;
  std::unordered_map<std::uint64_t, LockMode> held_;  // (node,id) -> mode
  std::uint64_t drain_polls_ = 0;
};

}  // namespace dcs::dlm
