// DQNL — Distributed Queue based Non-shared Locking (Devulapalli &
// Wyckoff [10]).
//
// The home node hosts one 64-bit word per lock holding the id of the tail
// of a distributed waiter queue (0 = free).  A requester atomically swaps
// itself in with a CAS retry loop; if the previous tail was non-zero it
// notifies that node and waits for a direct grant at release time.
//
// Shared locks are NOT supported natively: every request is exclusive, so a
// crowd of readers serializes into a grant chain — the weakness N-CoSED's
// fetch-and-add path removes (Figure 5a).
#pragma once

#include <unordered_map>

#include "dlm/lock_manager.hpp"

namespace dcs::dlm {

class DqnlLockManager final : public LockManager {
 public:
  /// Lock words live on `home`; supports lock ids < max_locks.
  DqnlLockManager(verbs::Network& net, NodeId home, std::size_t max_locks = 64);
  ~DqnlLockManager() override;

  sim::Task<void> lock(NodeId self, LockId id, LockMode mode) override;
  sim::Task<void> unlock(NodeId self, LockId id) override;
  const char* name() const override { return "DQNL"; }

  std::uint64_t cas_retries() const { return cas_retries_; }

 private:
  verbs::Network& net_;
  NodeId home_;
  std::size_t max_locks_;
  verbs::RemoteRegion table_;   // max_locks x 8 bytes of tail words
  std::uint64_t cas_retries_ = 0;
};

}  // namespace dcs::dlm
