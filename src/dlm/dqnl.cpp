#include "dlm/dqnl.hpp"

#include "audit/audit.hpp"
#include "trace/trace.hpp"
#include "verbs/wire.hpp"

namespace dcs::dlm {

namespace {
struct DqnlMetrics {
  trace::Counter& locks = reg().counter("dlm.dqnl.lock_acquires");
  trace::Counter& unlocks = reg().counter("dlm.dqnl.unlocks");
  trace::Counter& cas_retries = reg().counter("dlm.dqnl.cas_retries");
  trace::Distribution& lock_latency =
      reg().distribution("dlm.dqnl.lock_latency_ns");

  static trace::Registry& reg() { return trace::Registry::global(); }
};

DqnlMetrics& metrics() {
  static DqnlMetrics m;
  return m;
}
}  // namespace

DqnlLockManager::DqnlLockManager(verbs::Network& net, NodeId home,
                                 std::size_t max_locks)
    : net_(net), home_(home), max_locks_(max_locks) {
  table_ = net_.hca(home_).allocate_region(max_locks_ * 8);
  // The table is all CAS-polled lock words: release/acquire edges, not data.
  if (auto* a = audit::Auditor::current()) {
    a->mark_sync_range(home_, table_.addr, max_locks_ * 8);
  }
  audit::host_write(home_, table_.addr, max_locks_ * 8, "dlm.dqnl.zero-table");
  auto bytes = net_.fabric().node(home_).memory().bytes(table_.addr,
                                                        max_locks_ * 8);
  std::fill(bytes.begin(), bytes.end(), std::byte{0});
}

DqnlLockManager::~DqnlLockManager() {
  if (auto* a = audit::Auditor::current()) {
    a->unmark_sync_range(home_, table_.addr);
  }
  net_.hca(home_).free_region(table_);
}

sim::Task<void> DqnlLockManager::lock(NodeId self, LockId id, LockMode mode) {
  // DQNL has no shared mode; readers queue like writers.
  (void)mode;
  DCS_CHECK(id < max_locks_);
  metrics().locks.add();
  DCS_TRACE_COST_SPAN(trace::Cost::kLockWait, "dlm", "lock", self, id,
                      "DQNL");
  const SimNanos t0 = net_.fabric().engine().now();
  auto& hca = net_.hca(self);
  const std::size_t off = static_cast<std::size_t>(id) * 8;
  const std::uint64_t me = self + 1;

  // Atomic swap of the tail word, emulated with a CAS retry loop (IB verbs
  // expose CAS and FAA; [10] builds its queue from exactly these).
  std::uint64_t prev = 0;
  for (;;) {
    const auto old = co_await hca.compare_and_swap(table_, off, prev, me);
    if (old == prev) break;
    prev = old;
    ++cas_retries_;
    metrics().cas_retries.add();
  }

  if (prev == 0) {
    if (auto* a = audit::Auditor::current()) {
      a->lock_granted(this, "dqnl", id, self, /*exclusive=*/true);
    }
    metrics().lock_latency.record_ns(net_.fabric().engine().now() - t0);
    co_return;  // lock was free
  }
  // Tell the previous tail we are behind it, then wait for its grant.
  co_await hca.send(static_cast<NodeId>(prev - 1), tags::kDqnlWait + id,
                    verbs::Encoder().u32(self).take());
  (void)co_await hca.recv(tags::kDqnlGrant + id);
  if (auto* a = audit::Auditor::current()) {
    a->lock_granted(this, "dqnl", id, self, /*exclusive=*/true);
  }
  metrics().lock_latency.record_ns(net_.fabric().engine().now() - t0);
}

sim::Task<void> DqnlLockManager::unlock(NodeId self, LockId id) {
  DCS_CHECK(id < max_locks_);
  metrics().unlocks.add();
  DCS_TRACE_SPAN("dlm", "unlock", self, id, "DQNL");
  auto& hca = net_.hca(self);
  const std::size_t off = static_cast<std::size_t>(id) * 8;
  const std::uint64_t me = self + 1;
  if (auto* a = audit::Auditor::current()) {
    a->lock_released(this, "dqnl", id, self);
  }

  // Direct handoff: a successor that already announced itself gets the lock
  // with a single message, no atomic needed.
  if (auto pending = hca.try_recv(tags::kDqnlWait + id)) {
    const NodeId successor = verbs::Decoder(pending->payload).u32();
    if (auto* a = audit::Auditor::current()) {
      a->lock_handoff(this, "dqnl", id, self, successor);
    }
    co_await hca.send(successor, tags::kDqnlGrant + id,
                      verbs::Encoder().u32(id).take());
    co_return;
  }

  // Fast path: nobody queued behind us.
  const auto old = co_await hca.compare_and_swap(table_, off, me, 0);
  if (old == me) co_return;

  // Someone swapped in behind us; their notification names our successor.
  verbs::Message msg = co_await hca.recv(tags::kDqnlWait + id);
  const NodeId successor = verbs::Decoder(msg.payload).u32();
  if (auto* a = audit::Auditor::current()) {
    a->lock_handoff(this, "dqnl", id, self, successor);
  }
  co_await hca.send(successor, tags::kDqnlGrant + id,
                    verbs::Encoder().u32(id).take());
}

}  // namespace dcs::dlm
