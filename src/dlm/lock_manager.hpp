// Distributed lock management (Section 4.2 / [14]).
//
// Three schemes, one interface:
//   - SRSL    Send/Receive-based Server Locking: a conventional lock server
//             process on the home node grants locks over two-sided messages.
//   - DQNL    Distributed Queue based Non-shared Locking [10]: one-sided
//             CAS-only queue; *every* request is treated as exclusive, so
//             shared lock cascades serialize.
//   - N-CoSED The paper's design: the home node hosts a 64-bit lock window
//             split [exclusive-tail:32 | shared-request-count:32].
//             Exclusive requests enqueue with compare-and-swap; shared
//             requests register with fetch-and-add; releases cascade grants
//             directly between the involved nodes.
//
// Model restriction (documented): one lock-holding process per node per
// lock id — waiter mailboxes are addressed by (node, lock id).  The paper's
// cascade experiments place each waiting process on its own node, matching
// this restriction.
#pragma once

#include <cstdint>

#include "sim/engine.hpp"
#include "verbs/verbs.hpp"

namespace dcs::dlm {

using fabric::NodeId;
using LockId = std::uint32_t;

enum class LockMode : std::uint8_t { kShared = 1, kExclusive = 2 };

/// Common interface so benchmarks and services can swap schemes.
class LockManager {
 public:
  virtual ~LockManager() = default;

  /// Acquires `id` in the given mode on behalf of the process on `self`.
  virtual sim::Task<void> lock(NodeId self, LockId id, LockMode mode) = 0;
  /// Releases the lock previously acquired by `self`.
  virtual sim::Task<void> unlock(NodeId self, LockId id) = 0;

  virtual const char* name() const = 0;

  sim::Task<void> lock_shared(NodeId self, LockId id) {
    return lock(self, id, LockMode::kShared);
  }
  sim::Task<void> lock_exclusive(NodeId self, LockId id) {
    return lock(self, id, LockMode::kExclusive);
  }
};

/// Verbs message-tag bases used by the lock protocols.  Each protocol's
/// per-lock mailboxes live at base + lock id; lock ids must stay below
/// kTagStride.
namespace tags {
inline constexpr std::uint32_t kTagStride = 0x10000;
inline constexpr std::uint32_t kSrslRequest = 0x53520000;
inline constexpr std::uint32_t kSrslGrant = 0x53530000;
inline constexpr std::uint32_t kDqnlWait = 0x44510000;
inline constexpr std::uint32_t kDqnlGrant = 0x44520000;
inline constexpr std::uint32_t kNcWaitExcl = 0x4E430000;
inline constexpr std::uint32_t kNcWaitShared = 0x4E440000;
inline constexpr std::uint32_t kNcGrantShared = 0x4E450000;
inline constexpr std::uint32_t kNcHandoff = 0x4E460000;
}  // namespace tags

}  // namespace dcs::dlm
