#include "dlm/ncosed.hpp"

#include <vector>

#include "audit/audit.hpp"
#include "trace/hot.hpp"
#include "trace/trace.hpp"
#include "verbs/wire.hpp"

namespace dcs::dlm {

namespace {
std::uint64_t holder_key(NodeId node, LockId id) {
  return (static_cast<std::uint64_t>(node) << 32) | id;
}

struct NcosedMetrics {
  trace::Counter& shared_locks = reg().counter("dlm.ncosed.shared_acquires");
  trace::Counter& excl_locks = reg().counter("dlm.ncosed.exclusive_acquires");
  trace::Counter& unlocks = reg().counter("dlm.ncosed.unlocks");
  trace::Counter& drain_polls = reg().counter("dlm.ncosed.drain_polls");
  trace::Counter& handoffs = reg().counter("dlm.ncosed.direct_handoffs");
  trace::Histogram& cascade_depth =
      reg().histogram("dlm.ncosed.cascade_depth");
  trace::Distribution& lock_latency =
      reg().distribution("dlm.ncosed.lock_latency_ns");

  static trace::Registry& reg() { return trace::Registry::global(); }
};

NcosedMetrics& metrics() {
  static NcosedMetrics m;
  return m;
}
}  // namespace

NcosedLockManager::NcosedLockManager(verbs::Network& net, NodeId home,
                                     std::size_t max_locks,
                                     SimNanos drain_poll_interval)
    : net_(net),
      home_(home),
      max_locks_(max_locks),
      poll_interval_(drain_poll_interval) {
  table_ = net_.hca(home_).allocate_region(max_locks_ * kEntryBytes);
  // The lock window (W0/W1 words) is polled synchronization state.
  if (auto* a = audit::Auditor::current()) {
    a->mark_sync_range(home_, table_.addr, max_locks_ * kEntryBytes);
  }
  audit::host_write(home_, table_.addr, max_locks_ * kEntryBytes,
                    "dlm.ncosed.zero-table");
  auto bytes = net_.fabric().node(home_).memory().bytes(
      table_.addr, max_locks_ * kEntryBytes);
  std::fill(bytes.begin(), bytes.end(), std::byte{0});
}

NcosedLockManager::~NcosedLockManager() {
  if (auto* a = audit::Auditor::current()) {
    a->unmark_sync_range(home_, table_.addr);
  }
  net_.hca(home_).free_region(table_);
}

sim::Task<void> NcosedLockManager::lock(NodeId self, LockId id,
                                        LockMode mode) {
  DCS_CHECK(id < max_locks_);
  const auto key = holder_key(self, id);
  DCS_CHECK_MSG(!held_.contains(key), "N-CoSED: node already holds this lock");
  DCS_TRACE_COST_SPAN(trace::Cost::kLockWait, "dlm", "lock", self, id,
                      mode == LockMode::kShared ? "N-CoSED/shared"
                                                : "N-CoSED/exclusive");
  DCS_HOT("dlm.lock", id, 1);
  const SimNanos t0 = net_.fabric().engine().now();
  if (mode == LockMode::kShared) {
    metrics().shared_locks.add();
    co_await lock_shared_impl(self, id);
  } else {
    metrics().excl_locks.add();
    co_await lock_exclusive_impl(self, id);
  }
  if (auto* a = audit::Auditor::current()) {
    a->lock_granted(this, "ncosed", id, self,
                    /*exclusive=*/mode == LockMode::kExclusive);
  }
  metrics().lock_latency.record_ns(net_.fabric().engine().now() - t0);
  held_[key] = mode;
}

sim::Task<void> NcosedLockManager::unlock(NodeId self, LockId id) {
  const auto it = held_.find(holder_key(self, id));
  DCS_CHECK_MSG(it != held_.end(), "N-CoSED: unlock without hold");
  metrics().unlocks.add();
  DCS_TRACE_SPAN("dlm", "unlock", self, id, "N-CoSED");
  const LockMode mode = it->second;
  held_.erase(it);
  if (auto* a = audit::Auditor::current()) {
    a->lock_released(this, "ncosed", id, self);
  }
  if (mode == LockMode::kShared) {
    co_await unlock_shared_impl(self, id);
  } else {
    co_await unlock_exclusive_impl(self, id);
  }
}

sim::Task<void> NcosedLockManager::lock_shared_impl(NodeId self, LockId id) {
  auto& hca = net_.hca(self);
  // Register the shared request: one fetch-and-add on the lock window.
  const auto old = co_await hca.fetch_and_add(table_, w0_off(id), 1);
  const std::uint32_t tail = tail_of(old);
  if (tail == 0) co_return;  // no exclusive ahead of us: granted
  // Queue behind the exclusive tail; it grants us when it releases.
  DCS_LOG("dlm", "ncosed.queue_shared", self, tail - 1, id);
  co_await hca.send(static_cast<NodeId>(tail - 1), tags::kNcWaitShared + id,
                    verbs::Encoder().u32(self).take());
  (void)co_await hca.recv(tags::kNcGrantShared + id);
}

sim::Task<void> NcosedLockManager::unlock_shared_impl(NodeId self, LockId id) {
  // Purely one-sided: count our release; an exclusive drainer observes it.
  (void)co_await net_.hca(self).fetch_and_add(table_, w1_off(id), 1);
}

sim::Task<void> NcosedLockManager::lock_exclusive_impl(NodeId self,
                                                       LockId id) {
  auto& hca = net_.hca(self);
  const std::uint32_t me = self + 1;

  // Close the current epoch: swap ourselves in as tail with cleared count.
  // When the epoch we are closing has shared holders (count_of(guess) > 0),
  // the CAS attempt batches a W1 read onto the same doorbell (a combined
  // CAS+read work queue): the piggybacked read — executed at the home right
  // after the CAS — becomes the drain's first observation, for free.  The
  // uncontended path stays exactly one CAS (Figure 4a).
  std::uint64_t guess = 0;
  std::uint64_t old = 0;
  std::byte w1_img[8];
  std::optional<std::uint64_t> w1_observed;
  for (;;) {
    if (count_of(guess) > 0) {
      verbs::OpBatch batch;
      batch.compare_and_swap(table_, w0_off(id), guess, make_w0(me, 0), &old);
      batch.read(table_, w1_off(id), w1_img);
      co_await hca.post(std::move(batch));
      w1_observed = verbs::load_u64(w1_img, 0);
    } else {
      old = co_await hca.compare_and_swap(table_, w0_off(id), guess,
                                          make_w0(me, 0));
      w1_observed.reset();
    }
    if (old == guess) break;
    guess = old;
  }
  const std::uint32_t prev_tail = tail_of(old);
  const std::uint32_t shared_in_epoch = count_of(old);

  if (prev_tail != 0) {
    // Queue behind the previous exclusive; tell it how many shared waiters
    // its epoch accumulated so it can grant them before handing off.  A
    // holder that never releases leaves this strand parked in the recv
    // below with no timer — the flight recorder's stall trip is the only
    // witness (docs/OBSERVABILITY.md walkthrough).
    DCS_LOG("dlm", "ncosed.queue_excl", self, prev_tail - 1,
            shared_in_epoch);
    co_await hca.send(static_cast<NodeId>(prev_tail - 1),
                      tags::kNcWaitExcl + id,
                      verbs::Encoder().u32(self).u32(shared_in_epoch).take());
    (void)co_await hca.recv(tags::kNcHandoff + id);
    // The piggybacked W1 value predates the handoff (it may still count the
    // *previous* epoch's releases) — discard it; the drain re-reads.
    w1_observed.reset();
  }
  // Wait for the epoch's shared holders to drain, then start a fresh epoch.
  // (W1 is provably zero already when the epoch had no shared requests, so
  // the uncontended path is exactly one CAS — Figure 4a.)
  if (shared_in_epoch > 0) {
    co_await drain_shared(self, id, shared_in_epoch, w1_observed);
    std::byte zero[8] = {};
    co_await hca.write(table_, w1_off(id), zero);
  }
}

sim::Task<void> NcosedLockManager::drain_shared(
    NodeId self, LockId id, std::uint32_t target,
    std::optional<std::uint64_t> observed) {
  auto& hca = net_.hca(self);
  auto& eng = net_.fabric().engine();
  for (;;) {
    std::uint64_t released;
    if (observed.has_value()) {
      // Seeded by the acquisition batch's piggybacked read: no wire round.
      released = *observed;
      observed.reset();
    } else {
      std::byte img[8];
      co_await hca.read(table_, w1_off(id), img);
      released = verbs::load_u64(img, 0);
    }
    ++drain_polls_;
    metrics().drain_polls.add();
    if (released >= target) co_return;
    co_await eng.delay(poll_interval_);
  }
}

sim::Task<void> NcosedLockManager::grant_shared_batch(NodeId self, LockId id,
                                                      std::uint32_t count) {
  if (count > 0) {
    // Cascade depth: how many shared grants one release fans out to.
    metrics().cascade_depth.record(count);
    DCS_TRACE_INSTANT("dlm", "cascade_grant", self, count, "N-CoSED");
  }
  auto& hca = net_.hca(self);
  std::vector<NodeId> waiters;
  waiters.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    // Notifications that arrived during our hold were already processed in
    // the background (completion handling overlaps the critical section);
    // only stragglers cost a blocking receive now.
    if (auto msg = hca.try_recv(tags::kNcWaitShared + id)) {
      waiters.push_back(verbs::Decoder(msg->payload).u32());
      continue;
    }
    verbs::Message msg = co_await hca.recv(tags::kNcWaitShared + id);
    waiters.push_back(verbs::Decoder(msg.payload).u32());
  }
  // Cascading grant: every grant message rides ONE posted batch — a single
  // doorbell, back-to-back serialization, and one completion for the whole
  // cascade instead of a per-waiter post + wake.
  verbs::OpBatch grants;
  for (const NodeId w : waiters) {
    grants.send(w, tags::kNcGrantShared + id, verbs::Encoder().u32(id).take());
  }
  co_await hca.post(std::move(grants));
}

sim::Task<void> NcosedLockManager::unlock_exclusive_impl(NodeId self,
                                                         LockId id) {
  auto& hca = net_.hca(self);
  const std::uint32_t me = self + 1;

  // Direct handoff: if an exclusive successor has already announced itself,
  // no lock-window operation is needed at all — grant our epoch's shared
  // waiters and pass the lock along with one message.
  if (auto pending = hca.try_recv(tags::kNcWaitExcl + id)) {
    verbs::Decoder dec(pending->payload);
    const NodeId successor = dec.u32();
    const std::uint32_t owed_shared = dec.u32();
    metrics().handoffs.add();
    DCS_LOG("dlm", "ncosed.handoff", self, successor, owed_shared);
    if (auto* a = audit::Auditor::current()) {
      a->lock_handoff(this, "ncosed", id, self, successor);
    }
    co_await grant_shared_batch(self, id, owed_shared);
    co_await hca.send(successor, tags::kNcHandoff + id,
                      verbs::Encoder().u32(id).take());
    co_return;
  }

  // Otherwise try to CAS the tail out, guessing "no shared arrived" first.
  std::uint64_t guess = make_w0(me, 0);
  for (;;) {
    const auto old = co_await hca.compare_and_swap(
        table_, w0_off(id), guess, make_w0(0, count_of(guess)));
    if (old == guess) {
      // Stepped down; the shared-request count stays so the next epoch
      // closer drains exactly our grantees.
      co_await grant_shared_batch(self, id, count_of(old));
      co_return;
    }
    if (tail_of(old) == me) {
      guess = old;  // shared requests arrived meanwhile; retry with them
      continue;
    }
    // A newer exclusive closed our epoch; its notification carries the
    // number of shared waiters we owe grants to.
    verbs::Message msg = co_await hca.recv(tags::kNcWaitExcl + id);
    verbs::Decoder dec(msg.payload);
    const NodeId successor = dec.u32();
    const std::uint32_t owed_shared = dec.u32();
    DCS_LOG("dlm", "ncosed.handoff", self, successor, owed_shared);
    if (auto* a = audit::Auditor::current()) {
      a->lock_handoff(this, "ncosed", id, self, successor);
    }
    co_await grant_shared_batch(self, id, owed_shared);
    co_await hca.send(successor, tags::kNcHandoff + id,
                      verbs::Encoder().u32(id).take());
    co_return;
  }
}

}  // namespace dcs::dlm
