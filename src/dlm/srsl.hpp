// SRSL — traditional Send/Receive-based Server Locking.
//
// A lock-server process on the home node keeps per-lock state (mode, holder
// count, FIFO wait queue) and grants locks by replying to request messages.
// Every operation costs two-sided messaging plus server CPU, and every
// grant in a cascade is serialized through the server — the baseline the
// paper's one-sided designs beat.
#pragma once

#include <deque>
#include <unordered_map>

#include "dlm/lock_manager.hpp"

namespace dcs::dlm {

class SrslLockManager final : public LockManager {
 public:
  /// The server process runs on `server`; call start() once.
  SrslLockManager(verbs::Network& net, NodeId server);

  void start();

  sim::Task<void> lock(NodeId self, LockId id, LockMode mode) override;
  sim::Task<void> unlock(NodeId self, LockId id) override;
  const char* name() const override { return "SRSL"; }

  std::uint64_t requests_served() const { return requests_served_; }

 private:
  struct Waiter {
    NodeId node;
    LockMode mode;
  };
  struct LockState {
    std::uint32_t shared_holders = 0;
    bool exclusive_held = false;
    NodeId exclusive_holder = 0;
    std::deque<Waiter> queue;
  };

  sim::Task<void> server_loop();
  /// Grants as many queued waiters as the state admits (FIFO, shared batch).
  sim::Task<void> grant_from_queue(LockId id, LockState& st);
  sim::Task<void> send_grant(NodeId to, LockId id);

  verbs::Network& net_;
  NodeId server_;
  bool started_ = false;
  std::unordered_map<LockId, LockState> locks_;
  std::unordered_map<std::uint64_t, LockMode> held_;  // (node,id) -> mode
  std::uint64_t requests_served_ = 0;
};

}  // namespace dcs::dlm
