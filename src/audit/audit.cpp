#include "audit/audit.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "trace/flight.hpp"
#include "trace/trace.hpp"

namespace dcs::audit {

namespace {

Auditor*& current_slot() {
  static Auditor* current = nullptr;
  return current;
}

bool is_write(AccessKind kind) {
  return kind == AccessKind::kWrite || kind == AccessKind::kHostWrite ||
         kind == AccessKind::kAtomic;
}

bool overlaps(std::uint64_t a, std::uint64_t alen, std::uint64_t b,
              std::uint64_t blen) {
  return a < b + blen && b < a + alen;
}

std::uint64_t rkey_key(std::uint32_t node, std::uint32_t rkey) {
  return (static_cast<std::uint64_t>(node) << 32) | rkey;
}

}  // namespace

const char* to_string(AccessKind kind) {
  switch (kind) {
    case AccessKind::kRead:
      return "rdma-read";
    case AccessKind::kWrite:
      return "rdma-write";
    case AccessKind::kAtomic:
      return "rdma-atomic";
    case AccessKind::kHostRead:
      return "host-read";
    case AccessKind::kHostWrite:
      return "host-write";
  }
  return "?";
}

Auditor::Auditor(sim::Engine& eng, AuditConfig config)
    : eng_(eng), config_(config) {}

Auditor::~Auditor() {
  if (installed_) uninstall();
}

void Auditor::install() {
  DCS_CHECK_MSG(current_slot() == nullptr, "an Auditor is already installed");
  current_slot() = this;
  sim::audit_hook() = this;
  installed_ = true;
  main_strand_ = next_strand_++;
  current_ = main_strand_;
  tick();
}

void Auditor::uninstall() {
  if (!installed_) return;
  DCS_CHECK(current_slot() == this);
  current_slot() = nullptr;
  sim::audit_hook() = nullptr;
  installed_ = false;
}

bool Auditor::installed() const { return installed_; }

Auditor* Auditor::current() { return current_slot(); }

// --- vector-clock plumbing ---

void Auditor::join(Clock& into, const Clock& from) {
  for (const auto& [strand, time] : from) {
    auto& slot = into[strand];
    if (time > slot) slot = time;
  }
}

Auditor::Clock& Auditor::cur_clock() { return clocks_[current_]; }

void Auditor::tick() { ++clocks_[current_][current_]; }

bool Auditor::ordered_before_current(const Access& a) {
  const auto& clock = cur_clock();
  auto it = clock.find(a.strand);
  return it != clock.end() && it->second >= a.epoch;
}

// --- sim::AuditHook ---

void Auditor::on_schedule(void* handle) {
  // Queueing a handle is a wake edge: the receiver happens-after everything
  // the scheduling strand has done so far.
  Pending& p = pending_[handle];
  p.snapshot = cur_clock();
  p.fresh = false;
  tick();
}

void Auditor::on_spawn(void* handle) {
  // Engine::spawn calls schedule_now first, so the snapshot already exists;
  // the first dispatch of this handle opens a fresh strand.
  pending_[handle].fresh = true;
}

void Auditor::on_dispatch(void* handle) {
  Clock staged = run_barrier_;
  bool fresh = false;
  if (auto it = pending_.find(handle); it != pending_.end()) {
    join(staged, it->second.snapshot);
    fresh = it->second.fresh;
    pending_.erase(it);
  }
  if (fresh) {
    // A spawned root's first resumption comes straight out of
    // initial_suspend, which has no instrumented await_resume, so the new
    // strand is opened here instead of in resume_strand().
    current_ = next_strand_++;
    clocks_[current_] = std::move(staged);
    tick();
    incoming_.reset();
    return;
  }
  // An instrumented awaiter's await_resume will call resume_strand() and
  // pick this context up.
  incoming_ = std::move(staged);
}

std::uint64_t Auditor::suspend_strand() { return current_; }

void Auditor::resume_strand(std::uint64_t token) {
  if (token == 0) return;  // fast path: the awaiter never suspended
  current_ = static_cast<std::uint32_t>(token);
  if (incoming_.has_value()) {
    join(cur_clock(), *incoming_);
    incoming_.reset();
  }
  tick();
}

void Auditor::on_run_start() {
  // Single-threaded process: everything the caller did before run_until()
  // happens-before every event dispatched inside it.
  current_ = main_strand_;
  run_barrier_ = cur_clock();
  tick();
}

void Auditor::on_run_done() {
  // ... and everything dispatched happens-before the caller's code after
  // run_until() returns.
  current_ = main_strand_;
  for (const auto& [strand, clock] : clocks_) {
    if (strand != main_strand_) join(clocks_[main_strand_], clock);
  }
  tick();
}

void Auditor::release(const void* obj) {
  join(sync_clocks_[obj], cur_clock());
  tick();
}

void Auditor::acquire(const void* obj) {
  if (auto it = sync_clocks_.find(obj); it != sync_clocks_.end()) {
    join(cur_clock(), it->second);
  }
}

void Auditor::on_cross_shard(std::uint32_t src_shard, std::uint64_t seq) {
  // The sender ran on another OS thread under a different Auditor, so there
  // is no release/acquire pair to join here.  The sharded runner's merge
  // order (time, src shard, seq) is the ordering authority; locally the
  // delivery just opens a fresh epoch on the pump strand so accesses made
  // before and after the handoff are never reported as concurrent with each
  // other.
  (void)src_shard;
  (void)seq;
  tick();
}

// --- reporting ---

std::string Auditor::strand_name(std::uint32_t strand) const {
  if (auto it = strand_names_.find(strand); it != strand_names_.end()) {
    return it->second;
  }
  if (strand == main_strand_) return "main";
  return "strand#" + std::to_string(strand);
}

std::string Auditor::describe(const Access& a) const {
  std::ostringstream os;
  os << to_string(a.kind) << " of [0x" << std::hex << a.addr << ", 0x"
     << a.addr + a.len << std::dec << ") on node " << a.node << " by "
     << strand_name(a.strand) << " at t=" << a.time << "ns";
  if (a.site != nullptr) os << " (" << a.site << ")";
  return os.str();
}

void Auditor::report(const char* checker, std::string message) {
  trace::Registry::global()
      .counter(std::string("audit.") + checker + ".violations")
      .add();
  // Deduplicate retained reports so a hot loop tripping the same checker
  // does not grow the vector unboundedly in kCount mode.
  const bool seen =
      std::any_of(reports_.begin(), reports_.end(), [&](const Report& r) {
        return r.checker == checker && r.message == message;
      });
  if (!seen) {
    reports_.push_back(Report{checker, message, eng_.now()});
  }
  // The flight recorder sees every violation regardless of mode (the ring
  // record is free context for whatever dump comes later); kPostmortem
  // additionally snapshots a dump now, before the throw unwinds the
  // faulting strand and the context evaporates.
  if (auto* flight = trace::FlightRecorder::current()) {
    flight->violation(checker);
    if (config_.on_violation == OnViolation::kPostmortem) {
      flight->trip("audit-violation",
                   std::string("audit[") + checker + "]: " + message);
    }
  }
  if (config_.on_violation != OnViolation::kCount) {
    throw AuditError(std::string("audit[") + checker + "]: " +
                     std::move(message));
  }
}

// --- shadow memory / race detection ---

const Auditor::Range* Auditor::find_range(
    const std::map<std::uint64_t, Range>& ranges, std::uint64_t addr,
    std::size_t len) const {
  auto it = ranges.upper_bound(addr);
  if (it == ranges.begin()) return nullptr;
  --it;
  return it->second.contains(addr, len) ? &it->second : nullptr;
}

void Auditor::on_access(std::uint32_t node, std::uint64_t addr,
                        std::size_t len, AccessKind kind, const char* site) {
  ++accesses_checked_;
  if (auto nit = optimistic_ranges_.find(node);
      nit != optimistic_ranges_.end() &&
      find_range(nit->second, addr, len) != nullptr) {
    // Seqlock-style version-validated data: concurrent access is the
    // protocol's documented design, not a bug.
    return;
  }
  if (auto nit = sync_ranges_.find(node); nit != sync_ranges_.end()) {
    if (const Range* r = find_range(nit->second, addr, len)) {
      // A polled synchronization word (lock table, version counter).  Model
      // the access as a release/acquire on the range's clock instead of a
      // data access: writers publish, readers observe.
      if (is_write(kind)) {
        acquire(r);
        release(r);
      } else {
        acquire(r);
      }
      return;
    }
  }

  const Access access{addr,
                      static_cast<std::uint32_t>(len),
                      node,
                      kind,
                      current_,
                      cur_clock()[current_],
                      eng_.now(),
                      site};
  auto& hist = history_[node];
  // Newest-first scan: the most recent conflicting access gives the most
  // useful report, and one report per access keeps output bounded.
  for (auto it = hist.rbegin(); it != hist.rend(); ++it) {
    const Access& prev = *it;
    if (!overlaps(prev.addr, prev.len, addr, len)) continue;
    if (!is_write(prev.kind) && !is_write(kind)) continue;
    if (prev.kind == AccessKind::kAtomic && kind == AccessKind::kAtomic) {
      continue;  // remote atomics are atomic with each other by definition
    }
    if (ordered_before_current(prev)) continue;  // same strand always is
    report("race", describe(access) + " conflicts with unordered " +
                       describe(prev) +
                       "; no happens-before edge connects them");
    break;
  }
  hist.push_back(access);
  while (hist.size() > config_.history_limit) hist.pop_front();
}

void Auditor::purge_history(std::uint32_t node, std::uint64_t addr,
                            std::uint64_t len) {
  auto it = history_.find(node);
  if (it == history_.end()) return;
  std::erase_if(it->second, [&](const Access& a) {
    return overlaps(a.addr, a.len, addr, len);
  });
}

// --- lifecycle ---

void Auditor::on_register(std::uint32_t node, std::uint32_t rkey,
                          std::uint64_t addr, std::size_t len) {
  const std::uint64_t key = rkey_key(node, rkey);
  if (live_rkeys_.contains(key) || dead_rkeys_.contains(key)) {
    report("rkey-reuse", "rkey " + std::to_string(rkey) + " on node " +
                             std::to_string(node) +
                             " issued twice; rkeys must be unique for the "
                             "HCA's lifetime");
  }
  live_rkeys_[key] = Registration{addr, len};
}

void Auditor::on_deregister(std::uint32_t node, std::uint32_t rkey) {
  const std::uint64_t key = rkey_key(node, rkey);
  auto it = live_rkeys_.find(key);
  if (it == live_rkeys_.end()) return;
  // Tombstone for use-after-deregister detection, and forget the region's
  // shadow history: the arena may hand the same addresses to an unrelated
  // allocation next.
  dead_rkeys_[key] = it->second;
  purge_history(node, it->second.addr, it->second.len);
  live_rkeys_.erase(it);
}

bool Auditor::on_unknown_rkey(std::uint32_t node, std::uint32_t rkey,
                              const char* site) {
  const std::uint64_t key = rkey_key(node, rkey);
  auto it = dead_rkeys_.find(key);
  if (it == dead_rkeys_.end()) return false;
  std::ostringstream os;
  os << "one-sided op names rkey " << rkey << " on node " << node
     << ", deregistered region [0x" << std::hex << it->second.addr << ", 0x"
     << it->second.addr + it->second.len << std::dec << ")";
  if (site != nullptr) os << " (" << site << ")";
  report("use-after-deregister", os.str());
  return true;
}

void Auditor::on_atomic_shape(std::uint32_t node, std::size_t offset,
                              std::size_t len, const char* site) {
  if (len == 8 && offset % 8 == 0) return;
  std::ostringstream os;
  os << "remote atomic on node " << node << " at offset " << offset
     << " with width " << len
     << "; HCA atomics operate on 8-byte-aligned 8-byte words";
  if (site != nullptr) os << " (" << site << ")";
  report("atomic-shape", os.str());
}

// --- range classification ---

void Auditor::mark_sync_range(std::uint32_t node, std::uint64_t addr,
                              std::size_t len) {
  sync_ranges_[node][addr] = Range{addr, len};
}

void Auditor::unmark_sync_range(std::uint32_t node, std::uint64_t addr) {
  auto nit = sync_ranges_.find(node);
  if (nit == sync_ranges_.end()) return;
  if (auto it = nit->second.find(addr); it != nit->second.end()) {
    sync_clocks_.erase(&it->second);
    nit->second.erase(it);
  }
}

void Auditor::mark_optimistic_range(std::uint32_t node, std::uint64_t addr,
                                    std::size_t len) {
  optimistic_ranges_[node][addr] = Range{addr, len};
}

void Auditor::unmark_optimistic_range(std::uint32_t node,
                                      std::uint64_t addr) {
  if (auto nit = optimistic_ranges_.find(node);
      nit != optimistic_ranges_.end()) {
    nit->second.erase(addr);
  }
}

// --- protocol invariants ---

void Auditor::credit_change(const void* stream, const char* what,
                            std::int64_t delta, std::int64_t limit) {
  auto [it, inserted] = credits_.try_emplace(stream, CreditState{limit, limit});
  CreditState& st = it->second;
  st.balance += delta;
  if (st.balance < 0) {
    std::int64_t observed = st.balance;
    st.balance = 0;  // clamp so one bug does not cascade in kCount mode
    report("credit-underflow",
           std::string(what) + " balance dropped to " +
               std::to_string(observed) + " (limit " + std::to_string(limit) +
               "): consumed more than the pool ever held");
  } else if (st.balance > st.limit) {
    std::int64_t observed = st.balance;
    st.balance = st.limit;
    report("credit-overflow",
           std::string(what) + " balance rose to " + std::to_string(observed) +
               " above limit " + std::to_string(limit) +
               ": over-returned or window exceeded");
  }
}

void Auditor::lock_granted(const void* mgr, const char* scheme,
                           std::uint64_t lock, std::uint32_t node,
                           bool exclusive) {
  LockState& st = lock_states_[{mgr, lock}];
  const auto holder_list = [&st] {
    std::string s;
    for (const auto& [n, ex] : st.holders) {
      if (!s.empty()) s += ", ";
      s += std::to_string(n);
      s += ex ? " (exclusive)" : " (shared)";
    }
    return s;
  };
  if (st.holders.contains(node)) {
    report("lock-duplicate-grant",
           std::string(scheme) + " lock " + std::to_string(lock) +
               " granted to node " + std::to_string(node) +
               " which already holds it");
  } else if (exclusive && !st.holders.empty()) {
    report("lock-exclusive-while-held",
           std::string(scheme) + " lock " + std::to_string(lock) +
               " granted exclusively to node " + std::to_string(node) +
               " while held by " + holder_list());
  } else if (!exclusive &&
             std::any_of(st.holders.begin(), st.holders.end(),
                         [](const auto& h) { return h.second; })) {
    report("lock-shared-under-exclusive",
           std::string(scheme) + " lock " + std::to_string(lock) +
               " granted shared to node " + std::to_string(node) +
               " while exclusively held by " + holder_list());
  }
  st.holders[node] = exclusive;
}

void Auditor::lock_released(const void* mgr, const char* scheme,
                            std::uint64_t lock, std::uint32_t node) {
  auto it = lock_states_.find({mgr, lock});
  if (it == lock_states_.end() || !it->second.holders.contains(node)) {
    report("lock-release-without-hold",
           std::string(scheme) + " lock " + std::to_string(lock) +
               " released by node " + std::to_string(node) +
               " which does not hold it");
    return;
  }
  it->second.holders.erase(node);
  if (it->second.holders.empty()) lock_states_.erase(it);
}

void Auditor::lock_handoff(const void* mgr, const char* scheme,
                           std::uint64_t lock, std::uint32_t from,
                           std::uint32_t to) {
  auto it = lock_states_.find({mgr, lock});
  const bool to_holds =
      it != lock_states_.end() && it->second.holders.contains(to);
  if (from == to || to_holds) {
    report("lock-cascade-cycle",
           std::string(scheme) + " lock " + std::to_string(lock) +
               " handed off from node " + std::to_string(from) + " to node " +
               std::to_string(to) +
               (from == to ? " (self-handoff)"
                           : " which already holds it; cascade is cyclic"));
  }
}

void Auditor::name_strand(const char* name) { strand_names_[current_] = name; }

}  // namespace dcs::audit
