// RDMA access auditor: happens-before race detection for one-sided
// operations, plus lifecycle and protocol invariant checking.
//
// The paper's designs win because the target CPU never sees one-sided
// traffic — which also means a mis-synchronized `rdma_write` that overlaps a
// host read corrupts data silently.  The auditor makes those bugs loud and
// deterministic (see docs/AUDIT.md):
//
//   Shadow access history   every access to registered memory — NIC-side
//                           read/write/atomic from dcs::verbs, host-side
//                           touches reported by services — is recorded as
//                           (range, kind, virtual time, strand, epoch).
//                           Conflicting accesses with no happens-before path
//                           between them are reported as races.
//
//   Happens-before          vector clocks per strand (one logical thread of
//                           execution = one spawned root process).  Edges
//                           come from the simulator's own synchronization:
//                           event set/wait, channel push/recv, semaphore
//                           release/acquire, spawn and when_all joins
//                           (via sim::AuditHook), plus polled sync words
//                           (lock tables, version counters) that layers mark
//                           with mark_sync_range().
//
//   Lifecycle checkers      use-after-deregister (one-sided op against a
//                           tombstoned rkey), rkey reuse, misaligned or
//                           non-8-byte atomics.
//
//   Protocol checkers       SDP / flow-control credit and window invariants
//                           (credits never negative, never over-returned,
//                           window never exceeded) and DLM invariants
//                           (single exclusive holder, no grant while
//                           exclusively held, no duplicate grant, N-CoSED
//                           cascade acyclicity).
//
// Opt-in and always compilable: with no Auditor installed every call site
// is one pointer test.  Violations either throw AuditError (tests) or are
// counted in trace::Registry under `audit.*` and retained as reports
// (benches).  All output is deterministic for a given seed.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "sim/audit_hook.hpp"
#include "sim/engine.hpp"

namespace dcs::audit {

/// How an audited range was touched.
enum class AccessKind : std::uint8_t {
  kRead,       // NIC-side one-sided read
  kWrite,      // NIC-side one-sided write
  kAtomic,     // NIC-side CAS / FAA (atomic with other atomics)
  kHostRead,   // host CPU load from registered memory
  kHostWrite,  // host CPU store to registered memory
};

const char* to_string(AccessKind kind);

enum class OnViolation : std::uint8_t {
  kThrow,  // raise AuditError at the faulting operation (tests)
  kCount,  // record + count in trace::Registry, keep running (benches)
  /// As kThrow, but first trip the installed trace::FlightRecorder so the
  /// violation leaves a dcs-postmortem-v1 dump behind (post-mortem
  /// debugging of seeded races; no-op without a recorder installed).
  kPostmortem,
};

/// Raised at the faulting operation when on_violation == kThrow.
class AuditError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct AuditConfig {
  OnViolation on_violation = OnViolation::kThrow;
  /// Shadow accesses retained per node; older entries age out.
  std::size_t history_limit = 512;
};

/// One recorded violation.  Deterministic for a given seed: same text,
/// same order, same virtual time.
struct Report {
  std::string checker;  // "race", "use-after-deregister", ...
  std::string message;  // full context: both accesses / both holders
  SimNanos time = 0;    // virtual time of detection
};

class Auditor final : public sim::AuditHook {
 public:
  explicit Auditor(sim::Engine& eng, AuditConfig config = {});
  ~Auditor() override;
  Auditor(const Auditor&) = delete;
  Auditor& operator=(const Auditor&) = delete;

  /// Makes this the process-wide auditor (at most one at a time) and hooks
  /// the simulation engine.  Install before constructing the workload so
  /// region registrations and sync-range marks are observed.
  void install();
  void uninstall();
  bool installed() const;

  /// The installed auditor, or nullptr — the one-branch gate every
  /// instrumentation site tests.
  static Auditor* current();

  // --- registered-memory data plane (called by dcs::verbs and services) ---

  /// Records an access to [addr, addr+len) on `node` and checks it against
  /// the shadow history for conflicting concurrent accesses.
  void on_access(std::uint32_t node, std::uint64_t addr, std::size_t len,
                 AccessKind kind, const char* site);
  void on_register(std::uint32_t node, std::uint32_t rkey, std::uint64_t addr,
                   std::size_t len);
  void on_deregister(std::uint32_t node, std::uint32_t rkey);
  /// Consulted when a one-sided op names an rkey the HCA does not know.
  /// Returns true when the rkey was valid once (use-after-deregister).
  bool on_unknown_rkey(std::uint32_t node, std::uint32_t rkey,
                       const char* site);
  /// Validates a remote atomic's shape: 8 bytes, 8-byte-aligned offset.
  void on_atomic_shape(std::uint32_t node, std::size_t offset, std::size_t len,
                       const char* site);

  // --- range classification ---

  /// Marks [addr, addr+len) on `node` as a synchronization word range (lock
  /// table, version counter): accesses to it are release/acquire edges, not
  /// data accesses, mirroring how one-sided protocols synchronize by
  /// polling remote words.
  void mark_sync_range(std::uint32_t node, std::uint64_t addr,
                       std::size_t len);
  void unmark_sync_range(std::uint32_t node, std::uint64_t addr);
  /// Marks a range as optimistically-concurrent by design (seqlock-style
  /// version-validated data): access races there are the protocol's
  /// documented business, so they are not reported.
  void mark_optimistic_range(std::uint32_t node, std::uint64_t addr,
                             std::size_t len);
  void unmark_optimistic_range(std::uint32_t node, std::uint64_t addr);

  // --- protocol invariants ---

  /// Credit/window accounting for an opaque stream object.  The pool starts
  /// full at `limit`; consuming passes delta = -1, returning passes +1.
  /// Violations: balance below zero (underflow: more outstanding than
  /// permits exist) or above `limit` (over-return / window exceeded).
  void credit_change(const void* stream, const char* what, std::int64_t delta,
                     std::int64_t limit);

  /// Lock-grant bookkeeping for an opaque lock-manager object.
  void lock_granted(const void* mgr, const char* scheme, std::uint64_t lock,
                    std::uint32_t node, bool exclusive);
  void lock_released(const void* mgr, const char* scheme, std::uint64_t lock,
                     std::uint32_t node);
  /// A direct handoff of `lock` from one node to another (N-CoSED / DQNL
  /// cascades).  A handoff back into a node that still holds the lock is a
  /// cascade cycle.
  void lock_handoff(const void* mgr, const char* scheme, std::uint64_t lock,
                    std::uint32_t from, std::uint32_t to);

  // --- results ---

  const std::vector<Report>& reports() const { return reports_; }
  std::size_t report_count() const { return reports_.size(); }
  std::uint64_t accesses_checked() const { return accesses_checked_; }
  /// Names the current strand in reports ("ddss.daemon", ...).
  void name_strand(const char* name);

  // --- sim::AuditHook (driven by the engine; not for direct use) ---

  void on_schedule(void* handle) override;
  void on_spawn(void* handle) override;
  void on_dispatch(void* handle) override;
  std::uint64_t suspend_strand() override;
  void resume_strand(std::uint64_t token) override;
  void on_run_start() override;
  void on_run_done() override;
  void release(const void* obj) override;
  void acquire(const void* obj) override;
  void on_cross_shard(std::uint32_t src_shard, std::uint64_t seq) override;

 private:
  /// Sparse vector clock: strand id -> event count.
  using Clock = std::unordered_map<std::uint32_t, std::uint64_t>;

  struct Access {
    std::uint64_t addr;
    std::uint32_t len;
    std::uint32_t node;
    AccessKind kind;
    std::uint32_t strand;
    std::uint64_t epoch;  // strand's own clock value at access time
    SimNanos time;
    const char* site;
  };

  struct Pending {  // happens-before context captured at schedule time
    Clock snapshot;
    bool fresh = false;  // first dispatch of a spawned root: new strand
  };

  struct Range {
    std::uint64_t addr;
    std::uint64_t len;
    bool contains(std::uint64_t a, std::uint64_t l) const {
      return a >= addr && a + l <= addr + len;
    }
  };

  struct LockState {
    std::map<std::uint32_t, bool> holders;  // node -> exclusive?
  };

  static void join(Clock& into, const Clock& from);
  Clock& cur_clock();
  void tick();
  /// True when the recorded access happens-before the current strand.
  bool ordered_before_current(const Access& a);
  std::string strand_name(std::uint32_t strand) const;
  std::string describe(const Access& a) const;
  void report(const char* checker, std::string message);
  /// Sync/optimistic range lookup; nullptr when the access is plain data.
  const Range* find_range(const std::map<std::uint64_t, Range>& ranges,
                          std::uint64_t addr, std::size_t len) const;
  void purge_history(std::uint32_t node, std::uint64_t addr, std::uint64_t len);

  sim::Engine& eng_;
  AuditConfig config_;
  bool installed_ = false;

  // strands
  std::uint32_t next_strand_ = 1;
  std::uint32_t main_strand_ = 0;
  std::uint32_t current_ = 0;
  std::unordered_map<std::uint32_t, Clock> clocks_;
  std::unordered_map<std::uint32_t, std::string> strand_names_;
  std::unordered_map<void*, Pending> pending_;
  std::optional<Clock> incoming_;   // dispatch context awaiting resume_strand
  Clock run_barrier_;               // main's clock at run_until() entry

  // sync objects (pointer-keyed; never iterated, so order never observed)
  std::unordered_map<const void*, Clock> sync_clocks_;

  // shadow memory
  std::unordered_map<std::uint32_t, std::deque<Access>> history_;
  std::unordered_map<std::uint32_t, std::map<std::uint64_t, Range>>
      sync_ranges_;
  std::unordered_map<std::uint32_t, std::map<std::uint64_t, Range>>
      optimistic_ranges_;

  // lifecycle
  struct Registration {
    std::uint64_t addr;
    std::uint64_t len;
  };
  std::unordered_map<std::uint64_t, Registration> live_rkeys_;  // node<<32|rkey
  std::unordered_map<std::uint64_t, Registration> dead_rkeys_;

  // protocol
  struct CreditState {
    std::int64_t balance;
    std::int64_t limit;
  };
  std::unordered_map<const void*, CreditState> credits_;
  std::map<std::pair<const void*, std::uint64_t>, LockState> lock_states_;

  std::vector<Report> reports_;
  std::uint64_t accesses_checked_ = 0;
};

// --- convenience call sites ---

/// Reports a host-CPU touch of registered memory (the target-side accesses
/// one-sided RDMA can race with).  No-ops when no auditor is installed.
inline void host_read(std::uint32_t node, std::uint64_t addr, std::size_t len,
                      const char* site) {
  if (auto* a = Auditor::current()) {
    a->on_access(node, addr, len, AccessKind::kHostRead, site);
  }
}

inline void host_write(std::uint32_t node, std::uint64_t addr, std::size_t len,
                       const char* site) {
  if (auto* a = Auditor::current()) {
    a->on_access(node, addr, len, AccessKind::kHostWrite, site);
  }
}

}  // namespace dcs::audit
