file(REMOVE_RECURSE
  "CMakeFiles/dcs_dlm.dir/dqnl.cpp.o"
  "CMakeFiles/dcs_dlm.dir/dqnl.cpp.o.d"
  "CMakeFiles/dcs_dlm.dir/ncosed.cpp.o"
  "CMakeFiles/dcs_dlm.dir/ncosed.cpp.o.d"
  "CMakeFiles/dcs_dlm.dir/srsl.cpp.o"
  "CMakeFiles/dcs_dlm.dir/srsl.cpp.o.d"
  "libdcs_dlm.a"
  "libdcs_dlm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcs_dlm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
