# Empty dependencies file for dcs_dlm.
# This may be replaced when dependencies are built.
