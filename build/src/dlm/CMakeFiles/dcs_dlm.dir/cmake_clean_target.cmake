file(REMOVE_RECURSE
  "libdcs_dlm.a"
)
