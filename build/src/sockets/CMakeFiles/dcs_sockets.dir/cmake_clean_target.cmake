file(REMOVE_RECURSE
  "libdcs_sockets.a"
)
