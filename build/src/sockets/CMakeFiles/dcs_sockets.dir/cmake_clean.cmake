file(REMOVE_RECURSE
  "CMakeFiles/dcs_sockets.dir/flowctl.cpp.o"
  "CMakeFiles/dcs_sockets.dir/flowctl.cpp.o.d"
  "CMakeFiles/dcs_sockets.dir/sdp.cpp.o"
  "CMakeFiles/dcs_sockets.dir/sdp.cpp.o.d"
  "CMakeFiles/dcs_sockets.dir/tcp.cpp.o"
  "CMakeFiles/dcs_sockets.dir/tcp.cpp.o.d"
  "libdcs_sockets.a"
  "libdcs_sockets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcs_sockets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
