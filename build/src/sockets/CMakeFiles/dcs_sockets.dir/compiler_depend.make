# Empty compiler generated dependencies file for dcs_sockets.
# This may be replaced when dependencies are built.
