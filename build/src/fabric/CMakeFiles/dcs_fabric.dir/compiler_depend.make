# Empty compiler generated dependencies file for dcs_fabric.
# This may be replaced when dependencies are built.
