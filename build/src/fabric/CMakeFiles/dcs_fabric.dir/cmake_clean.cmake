file(REMOVE_RECURSE
  "CMakeFiles/dcs_fabric.dir/fabric.cpp.o"
  "CMakeFiles/dcs_fabric.dir/fabric.cpp.o.d"
  "CMakeFiles/dcs_fabric.dir/memory.cpp.o"
  "CMakeFiles/dcs_fabric.dir/memory.cpp.o.d"
  "CMakeFiles/dcs_fabric.dir/node.cpp.o"
  "CMakeFiles/dcs_fabric.dir/node.cpp.o.d"
  "libdcs_fabric.a"
  "libdcs_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcs_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
