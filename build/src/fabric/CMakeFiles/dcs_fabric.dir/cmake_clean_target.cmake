file(REMOVE_RECURSE
  "libdcs_fabric.a"
)
