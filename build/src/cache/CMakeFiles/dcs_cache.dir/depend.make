# Empty dependencies file for dcs_cache.
# This may be replaced when dependencies are built.
