file(REMOVE_RECURSE
  "libdcs_cache.a"
)
