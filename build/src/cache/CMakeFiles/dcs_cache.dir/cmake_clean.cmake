file(REMOVE_RECURSE
  "CMakeFiles/dcs_cache.dir/active_cache.cpp.o"
  "CMakeFiles/dcs_cache.dir/active_cache.cpp.o.d"
  "CMakeFiles/dcs_cache.dir/coop_cache.cpp.o"
  "CMakeFiles/dcs_cache.dir/coop_cache.cpp.o.d"
  "CMakeFiles/dcs_cache.dir/remote_pager.cpp.o"
  "CMakeFiles/dcs_cache.dir/remote_pager.cpp.o.d"
  "libdcs_cache.a"
  "libdcs_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcs_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
