file(REMOVE_RECURSE
  "libdcs_datacenter.a"
)
