
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datacenter/admission.cpp" "src/datacenter/CMakeFiles/dcs_datacenter.dir/admission.cpp.o" "gcc" "src/datacenter/CMakeFiles/dcs_datacenter.dir/admission.cpp.o.d"
  "/root/repo/src/datacenter/backend.cpp" "src/datacenter/CMakeFiles/dcs_datacenter.dir/backend.cpp.o" "gcc" "src/datacenter/CMakeFiles/dcs_datacenter.dir/backend.cpp.o.d"
  "/root/repo/src/datacenter/clients.cpp" "src/datacenter/CMakeFiles/dcs_datacenter.dir/clients.cpp.o" "gcc" "src/datacenter/CMakeFiles/dcs_datacenter.dir/clients.cpp.o.d"
  "/root/repo/src/datacenter/qos.cpp" "src/datacenter/CMakeFiles/dcs_datacenter.dir/qos.cpp.o" "gcc" "src/datacenter/CMakeFiles/dcs_datacenter.dir/qos.cpp.o.d"
  "/root/repo/src/datacenter/webfarm.cpp" "src/datacenter/CMakeFiles/dcs_datacenter.dir/webfarm.cpp.o" "gcc" "src/datacenter/CMakeFiles/dcs_datacenter.dir/webfarm.cpp.o.d"
  "/root/repo/src/datacenter/workload.cpp" "src/datacenter/CMakeFiles/dcs_datacenter.dir/workload.cpp.o" "gcc" "src/datacenter/CMakeFiles/dcs_datacenter.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sockets/CMakeFiles/dcs_sockets.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/dcs_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/verbs/CMakeFiles/dcs_verbs.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/dcs_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
