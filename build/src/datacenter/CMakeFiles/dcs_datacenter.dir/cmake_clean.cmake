file(REMOVE_RECURSE
  "CMakeFiles/dcs_datacenter.dir/admission.cpp.o"
  "CMakeFiles/dcs_datacenter.dir/admission.cpp.o.d"
  "CMakeFiles/dcs_datacenter.dir/backend.cpp.o"
  "CMakeFiles/dcs_datacenter.dir/backend.cpp.o.d"
  "CMakeFiles/dcs_datacenter.dir/clients.cpp.o"
  "CMakeFiles/dcs_datacenter.dir/clients.cpp.o.d"
  "CMakeFiles/dcs_datacenter.dir/qos.cpp.o"
  "CMakeFiles/dcs_datacenter.dir/qos.cpp.o.d"
  "CMakeFiles/dcs_datacenter.dir/webfarm.cpp.o"
  "CMakeFiles/dcs_datacenter.dir/webfarm.cpp.o.d"
  "CMakeFiles/dcs_datacenter.dir/workload.cpp.o"
  "CMakeFiles/dcs_datacenter.dir/workload.cpp.o.d"
  "libdcs_datacenter.a"
  "libdcs_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcs_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
