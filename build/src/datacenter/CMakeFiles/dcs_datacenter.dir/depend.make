# Empty dependencies file for dcs_datacenter.
# This may be replaced when dependencies are built.
