file(REMOVE_RECURSE
  "libdcs_common.a"
)
