# Empty dependencies file for dcs_common.
# This may be replaced when dependencies are built.
