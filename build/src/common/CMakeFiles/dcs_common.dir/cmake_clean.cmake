file(REMOVE_RECURSE
  "CMakeFiles/dcs_common.dir/log.cpp.o"
  "CMakeFiles/dcs_common.dir/log.cpp.o.d"
  "CMakeFiles/dcs_common.dir/rng.cpp.o"
  "CMakeFiles/dcs_common.dir/rng.cpp.o.d"
  "CMakeFiles/dcs_common.dir/stats.cpp.o"
  "CMakeFiles/dcs_common.dir/stats.cpp.o.d"
  "CMakeFiles/dcs_common.dir/table.cpp.o"
  "CMakeFiles/dcs_common.dir/table.cpp.o.d"
  "CMakeFiles/dcs_common.dir/zipf.cpp.o"
  "CMakeFiles/dcs_common.dir/zipf.cpp.o.d"
  "libdcs_common.a"
  "libdcs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
