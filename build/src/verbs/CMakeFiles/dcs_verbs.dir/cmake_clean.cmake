file(REMOVE_RECURSE
  "CMakeFiles/dcs_verbs.dir/verbs.cpp.o"
  "CMakeFiles/dcs_verbs.dir/verbs.cpp.o.d"
  "libdcs_verbs.a"
  "libdcs_verbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcs_verbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
