file(REMOVE_RECURSE
  "libdcs_verbs.a"
)
