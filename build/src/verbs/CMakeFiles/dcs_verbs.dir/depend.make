# Empty dependencies file for dcs_verbs.
# This may be replaced when dependencies are built.
