file(REMOVE_RECURSE
  "CMakeFiles/dcs_ddss.dir/aggregator.cpp.o"
  "CMakeFiles/dcs_ddss.dir/aggregator.cpp.o.d"
  "CMakeFiles/dcs_ddss.dir/ddss.cpp.o"
  "CMakeFiles/dcs_ddss.dir/ddss.cpp.o.d"
  "libdcs_ddss.a"
  "libdcs_ddss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcs_ddss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
