file(REMOVE_RECURSE
  "libdcs_ddss.a"
)
