# Empty compiler generated dependencies file for dcs_ddss.
# This may be replaced when dependencies are built.
