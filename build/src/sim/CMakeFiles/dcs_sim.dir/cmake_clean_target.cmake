file(REMOVE_RECURSE
  "libdcs_sim.a"
)
