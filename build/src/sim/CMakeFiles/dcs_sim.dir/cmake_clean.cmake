file(REMOVE_RECURSE
  "CMakeFiles/dcs_sim.dir/engine.cpp.o"
  "CMakeFiles/dcs_sim.dir/engine.cpp.o.d"
  "libdcs_sim.a"
  "libdcs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
