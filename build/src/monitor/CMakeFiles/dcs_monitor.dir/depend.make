# Empty dependencies file for dcs_monitor.
# This may be replaced when dependencies are built.
