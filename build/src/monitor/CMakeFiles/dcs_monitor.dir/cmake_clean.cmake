file(REMOVE_RECURSE
  "CMakeFiles/dcs_monitor.dir/monitor.cpp.o"
  "CMakeFiles/dcs_monitor.dir/monitor.cpp.o.d"
  "libdcs_monitor.a"
  "libdcs_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcs_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
