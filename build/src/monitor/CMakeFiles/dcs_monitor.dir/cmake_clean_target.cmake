file(REMOVE_RECURSE
  "libdcs_monitor.a"
)
