# Empty dependencies file for dcs_storm.
# This may be replaced when dependencies are built.
