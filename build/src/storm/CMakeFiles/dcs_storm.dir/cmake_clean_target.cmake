file(REMOVE_RECURSE
  "libdcs_storm.a"
)
