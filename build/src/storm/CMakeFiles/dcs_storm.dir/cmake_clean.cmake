file(REMOVE_RECURSE
  "CMakeFiles/dcs_storm.dir/storm.cpp.o"
  "CMakeFiles/dcs_storm.dir/storm.cpp.o.d"
  "libdcs_storm.a"
  "libdcs_storm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcs_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
