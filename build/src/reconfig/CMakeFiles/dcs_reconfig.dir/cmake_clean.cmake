file(REMOVE_RECURSE
  "CMakeFiles/dcs_reconfig.dir/reconfig.cpp.o"
  "CMakeFiles/dcs_reconfig.dir/reconfig.cpp.o.d"
  "libdcs_reconfig.a"
  "libdcs_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcs_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
