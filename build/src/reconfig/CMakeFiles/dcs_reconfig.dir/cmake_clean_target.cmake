file(REMOVE_RECURSE
  "libdcs_reconfig.a"
)
