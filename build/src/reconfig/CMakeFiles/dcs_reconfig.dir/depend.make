# Empty dependencies file for dcs_reconfig.
# This may be replaced when dependencies are built.
