file(REMOVE_RECURSE
  "CMakeFiles/bench_storm.dir/bench_storm.cpp.o"
  "CMakeFiles/bench_storm.dir/bench_storm.cpp.o.d"
  "bench_storm"
  "bench_storm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
