# Empty compiler generated dependencies file for bench_ddss_ops.
# This may be replaced when dependencies are built.
