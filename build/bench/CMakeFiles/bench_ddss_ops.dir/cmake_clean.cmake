file(REMOVE_RECURSE
  "CMakeFiles/bench_ddss_ops.dir/bench_ddss_ops.cpp.o"
  "CMakeFiles/bench_ddss_ops.dir/bench_ddss_ops.cpp.o.d"
  "bench_ddss_ops"
  "bench_ddss_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ddss_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
