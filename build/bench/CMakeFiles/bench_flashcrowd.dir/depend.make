# Empty dependencies file for bench_flashcrowd.
# This may be replaced when dependencies are built.
