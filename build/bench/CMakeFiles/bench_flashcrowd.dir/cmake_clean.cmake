file(REMOVE_RECURSE
  "CMakeFiles/bench_flashcrowd.dir/bench_flashcrowd.cpp.o"
  "CMakeFiles/bench_flashcrowd.dir/bench_flashcrowd.cpp.o.d"
  "bench_flashcrowd"
  "bench_flashcrowd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flashcrowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
