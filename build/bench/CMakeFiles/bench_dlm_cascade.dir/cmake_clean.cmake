file(REMOVE_RECURSE
  "CMakeFiles/bench_dlm_cascade.dir/bench_dlm_cascade.cpp.o"
  "CMakeFiles/bench_dlm_cascade.dir/bench_dlm_cascade.cpp.o.d"
  "bench_dlm_cascade"
  "bench_dlm_cascade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dlm_cascade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
