# Empty dependencies file for bench_dlm_cascade.
# This may be replaced when dependencies are built.
