file(REMOVE_RECURSE
  "CMakeFiles/bench_remote_pager.dir/bench_remote_pager.cpp.o"
  "CMakeFiles/bench_remote_pager.dir/bench_remote_pager.cpp.o.d"
  "bench_remote_pager"
  "bench_remote_pager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_remote_pager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
