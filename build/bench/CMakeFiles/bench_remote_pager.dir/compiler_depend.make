# Empty compiler generated dependencies file for bench_remote_pager.
# This may be replaced when dependencies are built.
