file(REMOVE_RECURSE
  "CMakeFiles/bench_ddss_latency.dir/bench_ddss_latency.cpp.o"
  "CMakeFiles/bench_ddss_latency.dir/bench_ddss_latency.cpp.o.d"
  "bench_ddss_latency"
  "bench_ddss_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ddss_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
