# Empty dependencies file for bench_monitor_zipf.
# This may be replaced when dependencies are built.
