file(REMOVE_RECURSE
  "CMakeFiles/bench_monitor_zipf.dir/bench_monitor_zipf.cpp.o"
  "CMakeFiles/bench_monitor_zipf.dir/bench_monitor_zipf.cpp.o.d"
  "bench_monitor_zipf"
  "bench_monitor_zipf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_monitor_zipf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
