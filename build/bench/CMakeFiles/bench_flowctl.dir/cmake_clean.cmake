file(REMOVE_RECURSE
  "CMakeFiles/bench_flowctl.dir/bench_flowctl.cpp.o"
  "CMakeFiles/bench_flowctl.dir/bench_flowctl.cpp.o.d"
  "bench_flowctl"
  "bench_flowctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flowctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
