# Empty dependencies file for bench_flowctl.
# This may be replaced when dependencies are built.
