file(REMOVE_RECURSE
  "CMakeFiles/bench_sdp.dir/bench_sdp.cpp.o"
  "CMakeFiles/bench_sdp.dir/bench_sdp.cpp.o.d"
  "bench_sdp"
  "bench_sdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
