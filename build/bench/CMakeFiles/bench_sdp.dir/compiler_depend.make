# Empty compiler generated dependencies file for bench_sdp.
# This may be replaced when dependencies are built.
