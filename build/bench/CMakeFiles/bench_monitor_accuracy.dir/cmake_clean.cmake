file(REMOVE_RECURSE
  "CMakeFiles/bench_monitor_accuracy.dir/bench_monitor_accuracy.cpp.o"
  "CMakeFiles/bench_monitor_accuracy.dir/bench_monitor_accuracy.cpp.o.d"
  "bench_monitor_accuracy"
  "bench_monitor_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_monitor_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
