# Empty compiler generated dependencies file for bench_monitor_accuracy.
# This may be replaced when dependencies are built.
