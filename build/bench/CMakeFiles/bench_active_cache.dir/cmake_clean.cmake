file(REMOVE_RECURSE
  "CMakeFiles/bench_active_cache.dir/bench_active_cache.cpp.o"
  "CMakeFiles/bench_active_cache.dir/bench_active_cache.cpp.o.d"
  "bench_active_cache"
  "bench_active_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_active_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
