# Empty dependencies file for bench_active_cache.
# This may be replaced when dependencies are built.
