# Empty dependencies file for bench_coopcache.
# This may be replaced when dependencies are built.
