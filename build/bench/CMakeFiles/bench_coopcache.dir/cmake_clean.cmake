file(REMOVE_RECURSE
  "CMakeFiles/bench_coopcache.dir/bench_coopcache.cpp.o"
  "CMakeFiles/bench_coopcache.dir/bench_coopcache.cpp.o.d"
  "bench_coopcache"
  "bench_coopcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coopcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
