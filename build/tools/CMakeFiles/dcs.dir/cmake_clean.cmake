file(REMOVE_RECURSE
  "CMakeFiles/dcs.dir/dcs_cli.cpp.o"
  "CMakeFiles/dcs.dir/dcs_cli.cpp.o.d"
  "dcs"
  "dcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
