# Empty compiler generated dependencies file for remote_pager_test.
# This may be replaced when dependencies are built.
