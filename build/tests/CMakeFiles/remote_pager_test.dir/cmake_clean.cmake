file(REMOVE_RECURSE
  "CMakeFiles/remote_pager_test.dir/remote_pager_test.cpp.o"
  "CMakeFiles/remote_pager_test.dir/remote_pager_test.cpp.o.d"
  "remote_pager_test"
  "remote_pager_test.pdb"
  "remote_pager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_pager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
