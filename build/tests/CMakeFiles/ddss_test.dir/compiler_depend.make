# Empty compiler generated dependencies file for ddss_test.
# This may be replaced when dependencies are built.
