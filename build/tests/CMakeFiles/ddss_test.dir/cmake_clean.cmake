file(REMOVE_RECURSE
  "CMakeFiles/ddss_test.dir/ddss_test.cpp.o"
  "CMakeFiles/ddss_test.dir/ddss_test.cpp.o.d"
  "ddss_test"
  "ddss_test.pdb"
  "ddss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
