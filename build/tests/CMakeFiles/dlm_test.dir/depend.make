# Empty dependencies file for dlm_test.
# This may be replaced when dependencies are built.
