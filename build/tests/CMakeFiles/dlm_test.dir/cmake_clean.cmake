file(REMOVE_RECURSE
  "CMakeFiles/dlm_test.dir/dlm_test.cpp.o"
  "CMakeFiles/dlm_test.dir/dlm_test.cpp.o.d"
  "dlm_test"
  "dlm_test.pdb"
  "dlm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
