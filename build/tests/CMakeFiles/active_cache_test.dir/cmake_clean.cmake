file(REMOVE_RECURSE
  "CMakeFiles/active_cache_test.dir/active_cache_test.cpp.o"
  "CMakeFiles/active_cache_test.dir/active_cache_test.cpp.o.d"
  "active_cache_test"
  "active_cache_test.pdb"
  "active_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
