file(REMOVE_RECURSE
  "CMakeFiles/erdma_test.dir/erdma_test.cpp.o"
  "CMakeFiles/erdma_test.dir/erdma_test.cpp.o.d"
  "erdma_test"
  "erdma_test.pdb"
  "erdma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erdma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
