# Empty dependencies file for erdma_test.
# This may be replaced when dependencies are built.
