# Empty compiler generated dependencies file for dlm_multilock_test.
# This may be replaced when dependencies are built.
