file(REMOVE_RECURSE
  "CMakeFiles/dlm_multilock_test.dir/dlm_multilock_test.cpp.o"
  "CMakeFiles/dlm_multilock_test.dir/dlm_multilock_test.cpp.o.d"
  "dlm_multilock_test"
  "dlm_multilock_test.pdb"
  "dlm_multilock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlm_multilock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
