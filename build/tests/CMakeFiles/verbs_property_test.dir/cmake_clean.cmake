file(REMOVE_RECURSE
  "CMakeFiles/verbs_property_test.dir/verbs_property_test.cpp.o"
  "CMakeFiles/verbs_property_test.dir/verbs_property_test.cpp.o.d"
  "verbs_property_test"
  "verbs_property_test.pdb"
  "verbs_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verbs_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
