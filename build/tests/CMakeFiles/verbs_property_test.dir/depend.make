# Empty dependencies file for verbs_property_test.
# This may be replaced when dependencies are built.
