# Empty compiler generated dependencies file for cache_audit_test.
# This may be replaced when dependencies are built.
