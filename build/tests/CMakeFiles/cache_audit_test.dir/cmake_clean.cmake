file(REMOVE_RECURSE
  "CMakeFiles/cache_audit_test.dir/cache_audit_test.cpp.o"
  "CMakeFiles/cache_audit_test.dir/cache_audit_test.cpp.o.d"
  "cache_audit_test"
  "cache_audit_test.pdb"
  "cache_audit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_audit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
