file(REMOVE_RECURSE
  "CMakeFiles/ddss_model_test.dir/ddss_model_test.cpp.o"
  "CMakeFiles/ddss_model_test.dir/ddss_model_test.cpp.o.d"
  "ddss_model_test"
  "ddss_model_test.pdb"
  "ddss_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddss_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
