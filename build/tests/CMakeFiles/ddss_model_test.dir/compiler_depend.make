# Empty compiler generated dependencies file for ddss_model_test.
# This may be replaced when dependencies are built.
