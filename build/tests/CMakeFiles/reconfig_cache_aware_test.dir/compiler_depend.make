# Empty compiler generated dependencies file for reconfig_cache_aware_test.
# This may be replaced when dependencies are built.
