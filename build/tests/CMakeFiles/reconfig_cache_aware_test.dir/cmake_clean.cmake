file(REMOVE_RECURSE
  "CMakeFiles/reconfig_cache_aware_test.dir/reconfig_cache_aware_test.cpp.o"
  "CMakeFiles/reconfig_cache_aware_test.dir/reconfig_cache_aware_test.cpp.o.d"
  "reconfig_cache_aware_test"
  "reconfig_cache_aware_test.pdb"
  "reconfig_cache_aware_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconfig_cache_aware_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
