# Empty dependencies file for sockets_property_test.
# This may be replaced when dependencies are built.
