file(REMOVE_RECURSE
  "CMakeFiles/sockets_property_test.dir/sockets_property_test.cpp.o"
  "CMakeFiles/sockets_property_test.dir/sockets_property_test.cpp.o.d"
  "sockets_property_test"
  "sockets_property_test.pdb"
  "sockets_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sockets_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
