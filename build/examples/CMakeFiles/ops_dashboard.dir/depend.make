# Empty dependencies file for ops_dashboard.
# This may be replaced when dependencies are built.
