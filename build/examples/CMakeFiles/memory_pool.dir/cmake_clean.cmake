file(REMOVE_RECURSE
  "CMakeFiles/memory_pool.dir/memory_pool.cpp.o"
  "CMakeFiles/memory_pool.dir/memory_pool.cpp.o.d"
  "memory_pool"
  "memory_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
