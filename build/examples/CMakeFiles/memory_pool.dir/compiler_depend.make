# Empty compiler generated dependencies file for memory_pool.
# This may be replaced when dependencies are built.
