
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/memory_pool.cpp" "examples/CMakeFiles/memory_pool.dir/memory_pool.cpp.o" "gcc" "examples/CMakeFiles/memory_pool.dir/memory_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cache/CMakeFiles/dcs_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/ddss/CMakeFiles/dcs_ddss.dir/DependInfo.cmake"
  "/root/repo/build/src/datacenter/CMakeFiles/dcs_datacenter.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/dcs_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/sockets/CMakeFiles/dcs_sockets.dir/DependInfo.cmake"
  "/root/repo/build/src/verbs/CMakeFiles/dcs_verbs.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/dcs_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
