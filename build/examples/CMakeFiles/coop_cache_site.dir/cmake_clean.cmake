file(REMOVE_RECURSE
  "CMakeFiles/coop_cache_site.dir/coop_cache_site.cpp.o"
  "CMakeFiles/coop_cache_site.dir/coop_cache_site.cpp.o.d"
  "coop_cache_site"
  "coop_cache_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coop_cache_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
