# Empty dependencies file for coop_cache_site.
# This may be replaced when dependencies are built.
