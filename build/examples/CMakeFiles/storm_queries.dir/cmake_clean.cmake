file(REMOVE_RECURSE
  "CMakeFiles/storm_queries.dir/storm_queries.cpp.o"
  "CMakeFiles/storm_queries.dir/storm_queries.cpp.o.d"
  "storm_queries"
  "storm_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
