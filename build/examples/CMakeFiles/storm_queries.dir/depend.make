# Empty dependencies file for storm_queries.
# This may be replaced when dependencies are built.
