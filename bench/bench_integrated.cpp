// E13 — Section 6 integrated evaluation (the paper's stated future work):
// cooperative caching + active monitoring + dynamic reconfiguration in one
// data-center.
//
// The paper warns that "blindly reallocating resources might have negative
// impacts on the proposed caching schemes due to cache corruption" and
// calls for evaluating the services together.  Here a batch site's load
// spike forces the reconfiguration manager to take one node away from the
// web/caching tier:
//
//   blind        first eligible donor — which is the HOTTEST cache in this
//                workload — so the move destroys the most valuable cached
//                bytes;
//   cache-aware  donor chosen by minimum cached bytes (the coop-cache
//                service's cached_bytes() feeds the manager's
//                RepurposeCost), sacrificing the coldest cache;
//   static       no reconfiguration at all: the web tier keeps its cache
//                but the batch site drowns.
//
// Reported: web-service hit rate and request latency after the move, plus
// batch-site completion time.
#include <benchmark/benchmark.h>

#include "cache/coop_cache.hpp"
#include "common/table.hpp"
#include "common/zipf.hpp"
#include "harness.hpp"
#include "monitor/monitor.hpp"
#include "reconfig/reconfig.hpp"

namespace {

using namespace dcs;

enum class Policy { kStatic, kBlind, kCacheAware };
const char* name_of(Policy p) {
  switch (p) {
    case Policy::kStatic: return "no reconfiguration";
    case Policy::kBlind: return "blind reconfiguration";
    case Policy::kCacheAware: return "cache-aware reconfiguration";
  }
  return "?";
}

struct IntegratedResult {
  double web_hit_rate_after;   // hit rate in the post-move window
  double web_latency_us;       // mean web request latency post-move
  double batch_done_ms;        // batch-site makespan (inf if starved)
  std::uint64_t moves;
};

constexpr SimNanos kWarm = milliseconds(200);
constexpr SimNanos kEnd = milliseconds(900);

IntegratedResult run_policy_on(sim::Engine& eng, Policy policy) {
  // Node 0: front-end/manager; 1..4: pool (web proxies / batch); 5 backend.
  fabric::Fabric fab(eng, fabric::FabricParams{},
                     {.num_nodes = 6, .cores_per_node = 1});
  verbs::Network net(fab);
  sockets::TcpNetwork tcp(fab);

  datacenter::DocumentStore store({.num_docs = 400, .doc_bytes = 16384});
  datacenter::BackendService backend(tcp, store, {5});
  backend.start();
  cache::CoopCacheService coop(net, backend, store, cache::Scheme::kBCC,
                               {1, 2, 3, 4}, {},
                               {.capacity_per_node = 2u << 20});

  monitor::ResourceMonitor mon(net, tcp, 0, {1, 2, 3, 4},
                               monitor::MonScheme::kRdmaSync);
  mon.start();
  // Two sites: 0 = web (all four nodes), 1 = batch (starts empty of load;
  // node 4 nominally assigned so the site exists).
  reconfig::ReconfigService svc(
      net, mon, 0, {1, 2, 3, 4}, 2,
      {.monitor_interval = milliseconds(20),
       .imbalance_threshold = 1.5,
       .history_window = 2,
       .node_repurpose_cost = milliseconds(20)},
      {}, {0, 0, 0, 1});

  if (policy == Policy::kCacheAware) {
    svc.set_repurpose_cost(
        [&coop](fabric::NodeId n) {
          return static_cast<double>(coop.cached_bytes(n));
        });
  }
  svc.set_repurpose_hook([&coop](fabric::NodeId n, std::uint32_t to_site) {
    // Repurposing a caching node destroys its cache contents.
    if (to_site != 0) coop.drop_node_cache(n);
  });
  if (policy != Policy::kStatic) svc.start();

  // Web traffic: skewed so nodes 1 and 2 accumulate the hottest caches
  // (sessions prefer low-numbered proxies for popular documents).
  IntegratedResult result{0, 0, 0, 0};
  RunningStat post_latency;
  std::uint64_t post_hits = 0, post_total = 0;
  for (int session = 0; session < 6; ++session) {
    eng.spawn([](sim::Engine& e, reconfig::ReconfigService& s,
                 cache::CoopCacheService& c, int id, RunningStat& lat,
                 std::uint64_t& hits, std::uint64_t& total)
                  -> sim::Task<void> {
      Rng rng(500 + id);
      ZipfSampler zipf(400, 0.8);
      while (e.now() < kEnd) {
        const auto servers = s.servers_of(0);
        const auto doc = static_cast<datacenter::DocId>(zipf.sample(rng));
        // Popular docs go to the first proxies -> their caches get hot.
        const auto proxy =
            servers[doc < 40 ? 0 : doc % servers.size()];
        const auto t0 = e.now();
        const auto before = c.stats();
        {
          trace::Request req("web.request", proxy, doc);
          (void)co_await c.serve(proxy, doc);
        }
        if (e.now() >= kWarm + milliseconds(100)) {
          lat.add(to_micros(e.now() - t0));
          const auto& after = c.stats();
          ++total;
          hits += (after.misses == before.misses);
        }
        co_await e.delay(microseconds(400));
      }
    }(eng, svc, coop, session, post_latency, post_hits, post_total));
  }

  // Batch site: a burst of jobs lands on site 1 at kWarm; with only one
  // node it is overloaded (imbalance the manager must fix).
  SimNanos batch_done = 0;
  eng.spawn([](sim::Engine& e, fabric::Fabric& f,
               reconfig::ReconfigService& s, SimNanos& done)
                -> sim::Task<void> {
    co_await e.delay(kWarm);
    // Open-loop arrivals: each job picks its server at its own arrival
    // time, so jobs arriving after a reconfiguration use the new node.
    std::size_t remaining = 120;
    for (int j = 0; j < 120; ++j) {
      e.spawn([](sim::Engine&, fabric::Fabric& fab2,
                 reconfig::ReconfigService& svc2,
                 std::size_t& left) -> sim::Task<void> {
        const auto server = co_await svc2.pick_server(1);
        co_await fab2.node(server).execute(microseconds(2000));
        --left;
      }(e, f, s, remaining));
      co_await e.delay(microseconds(1500));
    }
    while (remaining > 0) co_await e.delay(milliseconds(1));
    done = e.now();
  }(eng, fab, svc, batch_done));

  eng.run_until(kEnd + milliseconds(50));

  result.web_hit_rate_after =
      post_total > 0 ? static_cast<double>(post_hits) /
                           static_cast<double>(post_total)
                     : 0;
  result.web_latency_us = post_latency.mean();
  result.batch_done_ms =
      batch_done > 0 ? to_millis(batch_done - kWarm) : -1.0;
  result.moves = svc.reconfigurations();
  return result;
}

IntegratedResult run_policy(Policy policy) {
  sim::Engine eng;
  return run_policy_on(eng, policy);
}

void print_table() {
  Table table({"policy", "web hit rate (post-move)", "web latency (us)",
               "batch makespan (ms)", "moves"});
  for (const Policy p :
       {Policy::kStatic, Policy::kBlind, Policy::kCacheAware}) {
    const auto r = run_policy(p);
    table.add_row({name_of(p), Table::fmt(100 * r.web_hit_rate_after, 1) + " %",
                   Table::fmt(r.web_latency_us, 0),
                   r.batch_done_ms < 0 ? "starved"
                                       : Table::fmt(r.batch_done_ms, 0),
                   std::to_string(r.moves)});
  }
  table.print(
      "Section 6 (integrated) — caching + monitoring + reconfiguration "
      "(cache-aware donor selection avoids corrupting the hottest cache)");
}

void BM_Integrated(benchmark::State& state) {
  const auto policy = static_cast<Policy>(state.range(0));
  for (auto _ : state) {
    const auto r = run_policy(policy);
    state.counters["web_hit_rate"] = r.web_hit_rate_after;
    state.counters["batch_ms"] = r.batch_done_ms;
    state.SetIterationTime(to_secs(kEnd));
  }
  state.SetLabel(name_of(policy));
}
BENCHMARK(BM_Integrated)->DenseRange(0, 2)->UseManualTime()->Iterations(1);

// Harnessed scenarios (docs/BENCHMARKS.md).  The transport pair is the
// paper's Section 5.2 effect end to end: identical document fetches over
// the two-sided host-TCP path vs the one-sided SDP rendezvous, each fetch
// wrapped in a trace::Request so the critical-path analyzer attributes its
// latency — host-cpu share shrinks two-sided -> one-sided.  The policy
// scenarios snapshot the integrated Section 6 experiment.
void run_transport(bench::Scenario& s, datacenter::BackendTransport t) {
  auto& eng = s.engine();
  fabric::Fabric fab(eng, fabric::FabricParams{},
                     {.num_nodes = 4, .cores_per_node = 2});
  verbs::Network net(fab);
  sockets::TcpNetwork tcp(fab);
  datacenter::DocumentStore store({.num_docs = 64, .doc_bytes = 16384});
  datacenter::BackendService backend(tcp, net, store, {3},
                                     {.request_cpu = microseconds(20),
                                      .transport = t});
  backend.start();
  constexpr int kFetches = 30;
  eng.spawn([](sim::Engine& e, datacenter::BackendService& b,
               bench::Scenario& out) -> sim::Task<void> {
    for (datacenter::DocId d = 0; d < kFetches; ++d) {
      const auto t0 = e.now();
      {
        trace::Request req("web.request", 1, d);
        (void)co_await b.fetch(1, d);
      }
      out.latency_ns(static_cast<double>(e.now() - t0));
    }
  }(eng, backend, s));
  eng.run();
  s.metric("fetches", kFetches);
  s.metric("fetch_us_mean", to_micros(eng.now()) / kFetches);
  s.metric("backend_busy_us_per_fetch",
           to_micros(fab.node(3).busy_ns()) / kFetches);
}

int run_harness(const bench::HarnessOptions& opts) {
  bench::Harness h("integrated", opts);
  h.run("two-sided", [](bench::Scenario& s) {
    run_transport(s, datacenter::BackendTransport::kTcp);
  });
  h.run("one-sided", [](bench::Scenario& s) {
    run_transport(s, datacenter::BackendTransport::kSdp);
  });
  for (const Policy p :
       {Policy::kStatic, Policy::kBlind, Policy::kCacheAware}) {
    const char* label = p == Policy::kStatic    ? "policy/static"
                        : p == Policy::kBlind   ? "policy/blind"
                                                : "policy/cache-aware";
    h.run(label, [p](bench::Scenario& s) {
      const auto r = run_policy_on(s.engine(), p);
      s.metric("web_hit_rate", r.web_hit_rate_after);
      s.metric("web_latency_us", r.web_latency_us);
      s.metric("batch_makespan_ms", r.batch_done_ms);
      s.metric("moves", static_cast<double>(r.moves));
    });
  }
  return h.finish();
}

}  // namespace

int main(int argc, char** argv) {
  const auto harness = bench::extract_harness_flags(argc, argv);
  if (harness.harness_mode() || !harness.postmortem_dir.empty()) {
    return run_harness(harness);
  }
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
