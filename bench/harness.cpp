#include "harness.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "trace/flight.hpp"
#include "trace/hot.hpp"

namespace dcs::bench {

namespace {

/// Finds `flag <value>` in argv[1..], removes both, returns the value.
std::string take_flag(int& argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) != 0) continue;
    std::string value = argv[i + 1];
    for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
    argv[argc] = nullptr;
    return value;
  }
  return {};
}

std::string fmt_f3(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

std::string quoted(const std::string& s) { return "\"" + s + "\""; }

/// Scenario names embed '/' separators; dump prefixes become file names.
std::string sanitize(std::string name) {
  for (char& c : name) {
    if (c == '/' || c == ' ') c = '_';
  }
  return name;
}

}  // namespace

HarnessOptions extract_harness_flags(int& argc, char** argv) {
  HarnessOptions opts;
  opts.bench_json = take_flag(argc, argv, "--bench-json");
  opts.wall_json = take_flag(argc, argv, "--bench-wall-json");
  opts.critical_path = take_flag(argc, argv, "--critical-path");
  opts.timeseries_out = take_flag(argc, argv, "--timeseries-out");
  opts.slo_rules = take_flag(argc, argv, "--slo");
  opts.trace_out = take_flag(argc, argv, "--trace-out");
  opts.metrics_out = take_flag(argc, argv, "--metrics-out");
  opts.postmortem_dir = take_flag(argc, argv, "--postmortem-dir");
  opts.exemplars_out = take_flag(argc, argv, "--exemplars-out");
  opts.hotset_out = take_flag(argc, argv, "--hotset-out");
  const std::string batch = take_flag(argc, argv, "--batch");
  if (!batch.empty()) opts.batch = std::stoul(batch);
  const std::string hot_keys = take_flag(argc, argv, "--hot-keys");
  if (!hot_keys.empty()) opts.hot_keys = std::stoul(hot_keys);
  return opts;
}

std::vector<std::size_t> batch_sweep(std::size_t max) {
  if (max == 0) return {1, 2, 4, 8};
  std::vector<std::size_t> out;
  for (std::size_t k = 1; k < max; k *= 2) out.push_back(k);
  out.push_back(max);
  return out;
}

Harness::Harness(std::string bench, HarnessOptions opts)
    : bench_(std::move(bench)), opts_(std::move(opts)) {}

void Harness::run(const std::string& scenario,
                  const std::function<void(Scenario&)>& body) {
  sim::Engine eng;
  trace::Tracer tracer(eng);
  // Declared after the engine/tracer so it uninstalls first: a wedged
  // scenario's post-mortem must capture ring context before teardown.
  std::unique_ptr<trace::FlightRecorder> flight;
  trace::Registry::global().reset();
  tracer.install();
  if (!opts_.postmortem_dir.empty()) {
    flight = std::make_unique<trace::FlightRecorder>(
        eng, trace::FlightConfig{.postmortem_dir = opts_.postmortem_dir,
                                 .prefix = bench_ + "." + sanitize(scenario)});
    flight->install();
  }
  Scenario ctx(eng);
  const auto wall_start = std::chrono::steady_clock::now();
  {
    // DCS_HOT sites in ddss/dlm/verbs feed the shared sketch while the
    // body runs; without attribution the sites stay one disarmed branch.
    trace::ScopedHotSink hot_sink(opts_.attribution_mode() ? &hot_ : nullptr);
    body(ctx);
  }
  const auto wall_end = std::chrono::steady_clock::now();
  if (flight != nullptr) flight->uninstall();
  tracer.uninstall();

  Snapshot snap;
  snap.name = scenario;
  snap.virtual_ns = eng.now();
  snap.events = eng.events_dispatched();
  snap.wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(wall_end -
                                                           wall_start)
          .count());
  snap.batch = ctx.batch_depth_;
  snap.zipf_alpha = ctx.zipf_alpha_;
  snap.metrics = std::move(ctx.metrics_);
  snap.latency_count = ctx.latency_.count();
  if (snap.latency_count > 0) {
    snap.latency_mean = ctx.latency_.mean();
    snap.p0 = ctx.latency_.percentile(0.0);
    snap.p50 = ctx.latency_.percentile(50.0);
    snap.p99 = ctx.latency_.percentile(99.0);
    snap.p100 = ctx.latency_.percentile(100.0);
  }
  {
    std::ostringstream reg;
    trace::Registry::global().write_json(reg);
    snap.registry_json = reg.str();
  }
  if (!opts_.timeseries_out.empty() || !opts_.slo_rules.empty()) {
    // Scenario ordinal as node id: each scenario is "one node" of the
    // bench's cluster dump, so per-scenario history stays disjoint.
    store_.ingest_registry(static_cast<std::uint32_t>(snapshots_.size()),
                           eng.now(), trace::Registry::global());
  }
  const trace::CriticalPath cp(tracer);
  if (opts_.attribution_mode()) {
    // Every traced request becomes an exemplar candidate: the scenario
    // ordinal stands in as the node id (as in the time-series ingest) and
    // the request name keys the series.
    for (const trace::Breakdown& bd : cp.requests()) {
      exemplars_.record(static_cast<std::uint32_t>(snapshots_.size()),
                        bd.name, bd.total, bd.request, bd.by_cost);
    }
  }
  if (cp.aggregate().count > 0) {
    std::ostringstream agg;
    trace::write_breakdown_json(agg, cp.aggregate());
    snap.critical_path_json = agg.str();
    std::ostringstream report;
    cp.write_report(report);
    snap.critical_path_report = report.str();
  }
  snapshots_.push_back(std::move(snap));
}

int Harness::finish() {
  int rc = 0;
  if (!opts_.bench_json.empty()) {
    std::ofstream os(opts_.bench_json);
    if (!os) {
      std::fprintf(stderr, "bench: cannot open %s\n",
                   opts_.bench_json.c_str());
      rc = 1;
    } else {
      os << "{\n  \"schema\": \"dcs-bench-v1\",\n  \"bench\": "
         << quoted(bench_) << ",\n  \"scenarios\": {\n";
      for (std::size_t s = 0; s < snapshots_.size(); ++s) {
        const Snapshot& sn = snapshots_[s];
        os << "    " << quoted(sn.name) << ": {\n";
        os << "      \"virtual_ns\": " << sn.virtual_ns << ",\n";
        os << "      \"metrics\": {";
        bool first = true;
        for (const auto& [name, value] : sn.metrics) {
          os << (first ? "" : ", ") << quoted(name) << ": " << fmt_f3(value);
          first = false;
        }
        os << "},\n";
        os << "      \"latency_ns\": {\"count\": " << sn.latency_count;
        if (sn.latency_count > 0) {
          os << ", \"mean\": " << fmt_f3(sn.latency_mean)
             << ", \"p0\": " << fmt_f3(sn.p0) << ", \"p50\": " << fmt_f3(sn.p50)
             << ", \"p99\": " << fmt_f3(sn.p99)
             << ", \"p100\": " << fmt_f3(sn.p100);
        }
        os << "},\n";
        os << "      \"registry\": " << sn.registry_json;
        if (!sn.critical_path_json.empty()) {
          os << ",\n      \"critical_path\": " << sn.critical_path_json;
        }
        os << "\n    }" << (s + 1 < snapshots_.size() ? "," : "") << "\n";
      }
      os << "  }\n}\n";
      std::fprintf(stderr, "bench: %zu scenarios -> %s\n", snapshots_.size(),
                   opts_.bench_json.c_str());
    }
  }
  if (!opts_.wall_json.empty()) {
    std::ofstream os(opts_.wall_json);
    if (!os) {
      std::fprintf(stderr, "bench: cannot open %s\n", opts_.wall_json.c_str());
      rc = 1;
    } else {
      os << "{\n  \"schema\": \"dcs-bench-wall-v1\",\n  \"bench\": "
         << quoted(bench_) << ",\n  \"scenarios\": {\n";
      for (std::size_t s = 0; s < snapshots_.size(); ++s) {
        const Snapshot& sn = snapshots_[s];
        const double secs = sn.wall_ns / 1e9;
        const double eps = secs > 0 ? static_cast<double>(sn.events) / secs : 0;
        const double npe =
            sn.events > 0 ? sn.wall_ns / static_cast<double>(sn.events) : 0;
        os << "    " << quoted(sn.name) << ": {\n"
           << "      \"virtual_ns\": " << sn.virtual_ns << ",\n"
           << "      \"events\": " << sn.events << ",\n"
           << "      \"wall_ns\": " << fmt_f3(sn.wall_ns) << ",\n"
           << "      \"events_per_sec\": " << fmt_f3(eps) << ",\n"
           << "      \"ns_per_event\": " << fmt_f3(npe);
        if (sn.batch > 0) os << ",\n      \"batch\": " << sn.batch;
        if (sn.zipf_alpha >= 0) {
          os << ",\n      \"zipf_alpha\": " << fmt_f3(sn.zipf_alpha);
        }
        os << "\n    }" << (s + 1 < snapshots_.size() ? "," : "") << "\n";
        std::fprintf(stderr,
                     "bench: wall %s/%s: %llu events, %.1f ns/event, "
                     "%.0f events/sec\n",
                     bench_.c_str(), sn.name.c_str(),
                     static_cast<unsigned long long>(sn.events), npe, eps);
      }
      os << "  }\n}\n";
      std::fprintf(stderr, "bench: wall telemetry -> %s\n",
                   opts_.wall_json.c_str());
    }
  }
  if (!opts_.critical_path.empty()) {
    std::ofstream os(opts_.critical_path);
    if (!os) {
      std::fprintf(stderr, "bench: cannot open %s\n",
                   opts_.critical_path.c_str());
      rc = 1;
    } else {
      for (const Snapshot& sn : snapshots_) {
        if (sn.critical_path_report.empty()) continue;
        os << "== scenario " << sn.name << " ==\n"
           << sn.critical_path_report;
      }
    }
  }
  if (!opts_.timeseries_out.empty() || !opts_.slo_rules.empty()) {
    obs::SloEngine slo(store_);
    if (!opts_.slo_rules.empty()) {
      std::string error;
      auto rules = obs::parse_slo_rules_file(opts_.slo_rules, &error);
      if (!error.empty()) {
        std::fprintf(stderr, "bench: %s\n", error.c_str());
        rc = 1;
      }
      for (auto& rule : rules) slo.add_rule(std::move(rule));
      SimNanos now = 0;
      for (const Snapshot& sn : snapshots_) {
        if (sn.virtual_ns > now) now = sn.virtual_ns;
      }
      slo.evaluate(now);
      // The alert stream goes to stderr in both modes; firing alerts are
      // diagnostics, not a failure (the exit code stays about file I/O).
      std::ostringstream stream;
      obs::write_alert_stream(stream, slo.alerts());
      std::fputs(stream.str().c_str(), stderr);
    }
    if (!opts_.timeseries_out.empty()) {
      std::ofstream os(opts_.timeseries_out);
      if (!os) {
        std::fprintf(stderr, "bench: cannot open %s\n",
                     opts_.timeseries_out.c_str());
        rc = 1;
      } else {
        obs::write_timeseries_json(os, store_, slo.alerts());
        std::fprintf(stderr, "bench: %zu series -> %s\n",
                     store_.all().size(), opts_.timeseries_out.c_str());
      }
    }
  }
  if (!opts_.hotset_out.empty()) {
    std::ofstream os(opts_.hotset_out);
    if (!os) {
      std::fprintf(stderr, "bench: cannot open %s\n",
                   opts_.hotset_out.c_str());
      rc = 1;
    } else {
      obs::write_hotset_json(os, hot_);
      std::fprintf(stderr, "bench: hotset -> %s\n", opts_.hotset_out.c_str());
    }
  }
  if (!opts_.exemplars_out.empty()) {
    std::ofstream os(opts_.exemplars_out);
    if (!os) {
      std::fprintf(stderr, "bench: cannot open %s\n",
                   opts_.exemplars_out.c_str());
      rc = 1;
    } else {
      trace::write_exemplar_json(os, exemplars_);
      std::fprintf(stderr, "bench: exemplars -> %s\n",
                   opts_.exemplars_out.c_str());
    }
  }
  if (opts_.hot_keys > 0) {
    for (const std::string& domain : hot_.domains()) {
      std::printf("hot %s (total=%llu):\n", domain.c_str(),
                  static_cast<unsigned long long>(hot_.total(domain)));
      for (const obs::HotEntry& e : hot_.top(domain, opts_.hot_keys)) {
        std::printf("  key=%llu count=%llu error=%llu\n",
                    static_cast<unsigned long long>(e.key),
                    static_cast<unsigned long long>(e.count),
                    static_cast<unsigned long long>(e.error));
      }
    }
  }
  return rc;
}

}  // namespace dcs::bench
