// DDSS operation microbenchmarks beyond Figure 3a: get() latency per
// coherence model, the IPC-virtualization overhead, placement policies,
// and the global memory aggregator's striping bandwidth.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/zipf.hpp"
#include "ddss/aggregator.hpp"
#include "ddss/ddss.hpp"
#include "harness.hpp"

namespace {

using namespace dcs;

const std::vector<ddss::Coherence> kModels = {
    ddss::Coherence::kNull,    ddss::Coherence::kRead,
    ddss::Coherence::kWrite,   ddss::Coherence::kStrict,
    ddss::Coherence::kVersion, ddss::Coherence::kDelta,
    ddss::Coherence::kTemporal};

double get_latency_us(ddss::Coherence model, std::size_t bytes,
                      std::uint32_t process_id = 0) {
  sim::Engine eng;
  fabric::Fabric fab(eng, fabric::FabricParams{},
                     {.num_nodes = 2, .mem_per_node = 4u << 20});
  verbs::Network net(fab);
  ddss::Ddss substrate(net);
  substrate.start();
  double out = 0;
  eng.spawn([](ddss::Ddss& d, sim::Engine& e, ddss::Coherence m,
               std::size_t n, std::uint32_t proc, double& us)
                -> sim::Task<void> {
    auto writer = d.client(0);
    auto reader = d.client(0, proc);
    auto a = co_await writer.allocate(n, m, ddss::Placement::kRemote);
    std::vector<std::byte> v(n, std::byte{1});
    co_await writer.put(a, v);
    std::vector<std::byte> buf(n);
    co_await reader.get(a, buf);  // warm (temporal: populates the cache)
    const auto t0 = e.now();
    constexpr int kIters = 20;
    for (int i = 0; i < kIters; ++i) co_await reader.get(a, buf);
    us = to_micros(e.now() - t0) / kIters;
  }(substrate, eng, model, bytes, process_id, out));
  eng.run();
  return out;
}

void print_get_table() {
  std::vector<std::string> header = {"msg size"};
  for (const auto m : kModels) header.push_back(ddss::to_string(m));
  Table table(header);
  for (const std::size_t size : {64ul, 4096ul, 65536ul}) {
    std::vector<double> row;
    for (const auto m : kModels) row.push_back(get_latency_us(m, size));
    table.add_row(std::to_string(size) + " B", row, 2);
  }
  table.print(
      "DDSS get() latency (us) per coherence model "
      "(Temporal ~0: served from the local TTL cache)");
}

void print_ipc_table() {
  Table table({"accessor", "get latency (us)", "overhead"});
  const double owner = get_latency_us(ddss::Coherence::kNull, 1024, 0);
  const double other = get_latency_us(ddss::Coherence::kNull, 1024, 7);
  table.add_row({"substrate-owner process", Table::fmt(owner, 2), "-"});
  table.add_row({"other local process (IPC hop)", Table::fmt(other, 2),
                 "+" + Table::fmt(other - owner, 2) + " us"});
  table.print("DDSS IPC management — per-op cost of process virtualization");
}

void print_placement_table() {
  Table table({"policy", "allocation latency (us)", "homes used (of 4)"});
  for (const auto policy :
       {ddss::Placement::kLocal, ddss::Placement::kRemote,
        ddss::Placement::kRoundRobin, ddss::Placement::kLeastLoaded}) {
    sim::Engine eng;
    fabric::Fabric fab(eng, fabric::FabricParams{},
                       {.num_nodes = 4, .mem_per_node = 4u << 20});
    verbs::Network net(fab);
    ddss::Ddss substrate(net);
    substrate.start();
    double us = 0;
    std::set<fabric::NodeId> homes;
    eng.spawn([](ddss::Ddss& d, sim::Engine& e, ddss::Placement p,
                 double& lat, std::set<fabric::NodeId>& hs)
                  -> sim::Task<void> {
      auto c = d.client(0);
      const auto t0 = e.now();
      for (int i = 0; i < 12; ++i) {
        auto a = co_await c.allocate(4096, ddss::Coherence::kNull, p);
        hs.insert(a.home);
      }
      lat = to_micros(e.now() - t0) / 12;
    }(substrate, eng, policy, us, homes));
    eng.run();
    const char* name = policy == ddss::Placement::kLocal      ? "local"
                       : policy == ddss::Placement::kRemote   ? "remote"
                       : policy == ddss::Placement::kRoundRobin
                           ? "round-robin"
                           : "least-loaded";
    table.add_row({name, Table::fmt(us, 1), std::to_string(homes.size())});
  }
  table.print("DDSS data placement policies — allocation cost and spread");
}

void print_aggregator_table() {
  Table table({"extent layout", "1 MB read (us)", "effective GB/s"});
  for (const bool striped : {false, true}) {
    sim::Engine eng;
    fabric::Fabric fab(eng, fabric::FabricParams{},
                       {.num_nodes = 5, .mem_per_node = 4u << 20});
    verbs::Network net(fab);
    ddss::GlobalAggregator agg(net, {1, 2, 3, 4}, {.stripe_bytes = 64 * 1024});
    double us = 0;
    eng.spawn([](ddss::GlobalAggregator& a, sim::Engine& e, bool s,
                 double& lat) -> sim::Task<void> {
      auto extent = co_await a.allocate(1u << 20, s);
      std::vector<std::byte> buf(1u << 20);
      const auto t0 = e.now();
      co_await a.read(0, extent, 0, buf);
      lat = to_micros(e.now() - t0);
      co_await a.release(std::move(extent));
    }(agg, eng, striped, us));
    eng.run();
    table.add_row({striped ? "striped (64 KB across 4 donors)" : "linear",
                   Table::fmt(us, 1),
                   Table::fmt((1.0 / 1024.0) / (us * 1e-6), 2)});
  }
  table.print(
      "Global memory aggregator — striping turns capacity aggregation into "
      "bandwidth aggregation");
}

// Harnessed scenarios (docs/BENCHMARKS.md): serial 4 KB gets per coherence
// model, then a batched sweep (--batch N picks the max depth) where K gets
// of K distinct same-home allocations ride one get_many call — one
// doorbell, pipelined wire, one coalesced completion.  Batched latency
// samples are amortized per op (batch time / K) so "get/<model>/batch=K"
// compares directly against "get/<model>".
int run_harness(const bench::HarnessOptions& opts) {
  bench::Harness h("ddss_ops", opts);
  const auto setup = [](bench::Scenario& s, ddss::Coherence m, std::size_t k,
                        bool batched) {
    auto& eng = s.engine();
    fabric::Fabric fab(eng, fabric::FabricParams{},
                       {.num_nodes = 2, .mem_per_node = 4u << 20});
    verbs::Network net(fab);
    ddss::Ddss substrate(net);
    substrate.start();
    eng.spawn([](sim::Engine& e, ddss::Ddss& d, ddss::Coherence model,
                 std::size_t depth, bool use_batch,
                 bench::Scenario& out) -> sim::Task<void> {
      auto client = d.client(0);
      constexpr std::size_t kBytes = 4096;
      std::vector<std::byte> value(kBytes, std::byte{1});
      std::vector<ddss::Allocation> allocs;
      allocs.reserve(depth);
      for (std::size_t j = 0; j < depth; ++j) {
        allocs.push_back(co_await client.allocate(kBytes, model,
                                                  ddss::Placement::kRemote));
        co_await client.put(allocs.back(), value);
      }
      std::vector<std::vector<std::byte>> bufs(depth);
      std::vector<ddss::Client::GetOp> ops;
      ops.reserve(depth);
      for (std::size_t j = 0; j < depth; ++j) {
        bufs[j].resize(kBytes);
        ops.push_back({&allocs[j], bufs[j]});
      }
      co_await client.get_many(ops);  // warm-up
      constexpr int kIters = 20;
      for (int i = 0; i < kIters; ++i) {
        const auto t0 = e.now();
        {
          trace::Request req(use_batch ? "ddss.get_many" : "ddss.get", 0,
                             static_cast<std::uint64_t>(i));
          if (use_batch) {
            co_await client.get_many(ops);
          } else {
            co_await client.get(allocs[0], bufs[0]);
          }
        }
        const double per_op = static_cast<double>(e.now() - t0) /
                              static_cast<double>(depth);
        for (std::size_t j = 0; j < depth; ++j) out.latency_ns(per_op);
      }
    }(eng, substrate, m, k, batched, s));
    eng.run();
    s.metric("get_bytes", 4096);
  };
  for (const auto model : kModels) {
    h.run(std::string("get/") + ddss::to_string(model),
          [&](bench::Scenario& s) { setup(s, model, 1, false); });
  }
  for (const auto model : {ddss::Coherence::kNull, ddss::Coherence::kWrite,
                           ddss::Coherence::kRead}) {
    for (const std::size_t depth : bench::batch_sweep(opts.batch)) {
      h.run(std::string("get/") + ddss::to_string(model) + "/batch=" +
                std::to_string(depth),
            [&](bench::Scenario& s) {
              s.batch_depth(depth);
              setup(s, model, depth, true);
              s.metric("batch_depth", static_cast<double>(depth));
            });
    }
  }
  // Zipf-keyed gets over a 64-object working set: the attribution scenario.
  // Under --hotset-out / --hot-keys the harness arms the ambient hot sink,
  // so the DCS_HOT("ddss.object", ...) sites inside the substrate's get
  // path feed the top-K sketch — low Zipf ranks must dominate it.
  h.run("get/zipf", [&](bench::Scenario& s) {
    auto& eng = s.engine();
    fabric::Fabric fab(eng, fabric::FabricParams{},
                       {.num_nodes = 2, .mem_per_node = 4u << 20});
    verbs::Network net(fab);
    ddss::Ddss substrate(net);
    substrate.start();
    eng.spawn([](sim::Engine& e, ddss::Ddss& d,
                 bench::Scenario& out) -> sim::Task<void> {
      auto client = d.client(0);
      constexpr std::size_t kBytes = 512;
      constexpr std::size_t kObjects = 64;
      std::vector<std::byte> value(kBytes, std::byte{1});
      std::vector<ddss::Allocation> allocs;
      allocs.reserve(kObjects);
      for (std::size_t j = 0; j < kObjects; ++j) {
        allocs.push_back(co_await client.allocate(
            kBytes, ddss::Coherence::kWrite, ddss::Placement::kRemote));
        co_await client.put(allocs.back(), value);
      }
      Rng rng(7);
      ZipfSampler zipf(kObjects, 0.9);
      std::vector<std::byte> buf(kBytes);
      constexpr int kOps = 200;
      for (int i = 0; i < kOps; ++i) {
        const auto rank = zipf.sample(rng);
        const auto t0 = e.now();
        {
          trace::Request req("ddss.get", 0, static_cast<std::uint64_t>(i));
          co_await client.get(allocs[rank], buf);
        }
        out.latency_ns(static_cast<double>(e.now() - t0));
      }
    }(eng, substrate, s));
    eng.run();
    s.zipf_alpha(0.9);
    s.metric("get_bytes", 512);
  });
  return h.finish();
}

void BM_DdssGet(benchmark::State& state) {
  const auto model = kModels[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    state.SetIterationTime(get_latency_us(model, 4096) * 1e-6);
  }
  state.SetLabel(ddss::to_string(model));
}
BENCHMARK(BM_DdssGet)->DenseRange(0, 6)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const auto flags = bench::extract_harness_flags(argc, argv);
  if (flags.harness_mode()) return run_harness(flags);
  print_get_table();
  print_ipc_table();
  print_placement_table();
  print_aggregator_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
