// E7 — Figure 8a: accuracy of connection/thread-count monitoring under a
// loaded back-end, for Socket-Sync, Socket-Async, RDMA-Sync, RDMA-Async.
//
// Paper shape: RDMA-based schemes report (almost) no deviation from the
// actual thread count; socket-based schemes spike under load because the
// monitoring process waits in the run queue.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness.hpp"
#include "monitor/monitor.hpp"
#include "monitor/telemetry.hpp"

namespace {

using namespace dcs;
using monitor::MonScheme;

const std::vector<MonScheme> kSchemes = {
    MonScheme::kSocketAsync, MonScheme::kSocketSync, MonScheme::kRdmaAsync,
    MonScheme::kRdmaSync};

struct AccuracyResult {
  std::vector<double> deviation_series;  // per 1 ms sample
  double mean_abs_dev;
  double max_abs_dev;
};

AccuracyResult measure_on(sim::Engine& eng, MonScheme scheme) {
  fabric::Fabric fab(eng, fabric::FabricParams{},
                     {.num_nodes = 2, .cores_per_node = 1});
  verbs::Network net(fab);
  sockets::TcpNetwork tcp(fab);
  monitor::ResourceMonitor mon(net, tcp, 0, {1}, scheme,
                               {.async_interval = milliseconds(2)});
  mon.start();

  // Bursty thread churn on the back-end: a new phase every 15 ms with a
  // random number of CPU-bound jobs.
  eng.spawn([](sim::Engine& e, fabric::Fabric& f) -> sim::Task<void> {
    Rng rng(77);
    for (int phase = 0; phase < 60; ++phase) {
      const auto jobs = rng.uniform(0, 8);
      for (std::uint64_t j = 0; j < jobs; ++j) {
        e.spawn(f.node(1).execute(milliseconds(15)));
      }
      co_await e.delay(milliseconds(15));
    }
  }(eng, fab));

  AccuracyResult result{{}, 0, 0};
  eng.spawn([](sim::Engine& e, fabric::Fabric& f,
               monitor::ResourceMonitor& m,
               AccuracyResult& out) -> sim::Task<void> {
    co_await e.delay(milliseconds(10));  // let daemons settle
    RunningStat dev;
    // A slow (loaded) scheme completes fewer samples inside the window;
    // stats are updated per sample so partial runs report correctly.
    for (int i = 0; i < 400; ++i) {
      co_await e.delay(milliseconds(1));
      const auto sample = co_await m.query(1);
      const auto actual = f.node(1).kernel_stats().threads;
      const double d = std::abs(static_cast<double>(sample.stats.threads) -
                                static_cast<double>(actual));
      out.deviation_series.push_back(d);
      dev.add(d);
      out.mean_abs_dev = dev.mean();
      out.max_abs_dev = dev.max();
    }
  }(eng, fab, mon, result));
  eng.run_until(milliseconds(900));
  return result;
}

AccuracyResult measure(MonScheme scheme) {
  sim::Engine eng;
  return measure_on(eng, scheme);
}

void print_fig8a() {
  Table table({"scheme", "mean |deviation|", "max |deviation|",
               "% samples exact"});
  for (const auto scheme : kSchemes) {
    const auto r = measure(scheme);
    std::size_t exact = 0;
    for (const double d : r.deviation_series) exact += (d < 0.5);
    table.add_row(
        {monitor::to_string(scheme), Table::fmt(r.mean_abs_dev, 3),
         Table::fmt(r.max_abs_dev, 1),
         Table::fmt(100.0 * static_cast<double>(exact) /
                        static_cast<double>(r.deviation_series.size()),
                    1)});
  }
  table.print(
      "Figure 8a — deviation of reported vs actual thread count under "
      "bursty load (paper: RDMA schemes ~zero deviation)");
}

// Intrusiveness ([19] measured this directly): CPU consumed on the
// *monitored* node per monitoring frequency.  RDMA-based monitoring costs
// the target nothing at any rate; socket daemons charge kernel+daemon CPU
// per sample, which is why classic systems monitored coarsely.
void print_intrusiveness() {
  Table table({"scheme", "1 ms sampling", "10 ms sampling",
               "100 ms sampling"});
  for (const auto scheme :
       {MonScheme::kSocketSync, MonScheme::kRdmaSync}) {
    std::vector<std::string> row = {monitor::to_string(scheme)};
    for (const SimNanos period :
         {milliseconds(1), milliseconds(10), milliseconds(100)}) {
      sim::Engine eng;
      fabric::Fabric fab(eng, fabric::FabricParams{},
                         {.num_nodes = 2, .cores_per_node = 1});
      verbs::Network net(fab);
      sockets::TcpNetwork tcp(fab);
      monitor::ResourceMonitor mon(net, tcp, 0, {1}, scheme);
      mon.start();
      eng.spawn([](sim::Engine& e, monitor::ResourceMonitor& m,
                   SimNanos p) -> sim::Task<void> {
        while (e.now() < seconds(1)) {
          co_await e.delay(p);
          (void)co_await m.query(1);
        }
      }(eng, mon, period));
      eng.run_until(seconds(1));
      const double pct = 100.0 * fab.node(1).utilization();
      row.push_back(Table::fmt(pct, 2) + " % CPU");
    }
    table.add_row(row);
  }
  table.print(
      "Monitoring intrusiveness — target-node CPU consumed per sampling "
      "rate (kernel-assisted RDMA: zero at any rate)");
}

void BM_MonitorAccuracy(benchmark::State& state) {
  const auto scheme = kSchemes[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    const auto r = measure(scheme);
    state.counters["mean_abs_dev"] = r.mean_abs_dev;
    state.SetIterationTime(0.25);  // 250 ms of virtual monitoring
  }
  state.SetLabel(monitor::to_string(scheme));
}
BENCHMARK(BM_MonitorAccuracy)
    ->DenseRange(0, 3)
    ->UseManualTime()
    ->Iterations(1);

// Harnessed scenarios (docs/BENCHMARKS.md): Figure 8a accuracy per scheme
// plus the telemetry dogfood — a front-end RDMA-scraping a loaded node's
// own registry snapshot with zero target-CPU involvement.
int run_harness(const bench::HarnessOptions& opts) {
  bench::Harness h("monitor_accuracy", opts);
  for (const auto scheme : kSchemes) {
    h.run(std::string("accuracy/") + monitor::to_string(scheme),
          [scheme](bench::Scenario& s) {
            const auto r = measure_on(s.engine(), scheme);
            std::size_t exact = 0;
            for (const double d : r.deviation_series) exact += (d < 0.5);
            s.metric("mean_abs_dev", r.mean_abs_dev);
            s.metric("max_abs_dev", r.max_abs_dev);
            s.metric("samples",
                     static_cast<double>(r.deviation_series.size()));
            s.metric("pct_exact",
                     100.0 * static_cast<double>(exact) /
                         static_cast<double>(r.deviation_series.size()));
          });
  }
  h.run("telemetry/rdma-scrape", [](bench::Scenario& s) {
    auto& eng = s.engine();
    fabric::Fabric fab(eng, fabric::FabricParams{},
                       {.num_nodes = 2, .cores_per_node = 1});
    verbs::Network net(fab);
    monitor::TelemetryExporter exporter(net, 1,
                                        monitor::TelemetrySchema::standard());
    monitor::TelemetryScraper scraper(net, 0);
    scraper.attach(exporter);
    exporter.start();
    double scraped_sends = -1, seq = 0;
    SimNanos target_busy = 0;
    eng.spawn([](sim::Engine& e, verbs::Network& n,
                 monitor::TelemetryScraper& sc, fabric::Fabric& f,
                 double& out_sends, double& out_seq,
                 SimNanos& busy) -> sim::Task<void> {
      // Load on the exporting node: verbs traffic that bumps its counters.
      auto& hca = n.hca(1);
      for (int i = 0; i < 8; ++i) co_await hca.raw_write(0, 4096);
      const auto busy0 = f.node(1).busy_ns();
      co_await e.delay(milliseconds(2));  // let the mirror daemon publish
      const auto snap = co_await sc.scrape(1);
      out_sends = snap.value("verbs.raw_write.ops");
      out_seq = static_cast<double>(snap.seq);
      busy = f.node(1).busy_ns() - busy0;
    }(eng, net, scraper, fab, scraped_sends, seq, target_busy));
    // run_until: the exporter's mirror daemon republishes forever.
    eng.run_until(milliseconds(5));
    s.metric("scraped_raw_write_ops", scraped_sends);
    s.metric("publish_seq", seq);
    s.metric("target_cpu_ns_during_scrape",
             static_cast<double>(target_busy));
  });
  return h.finish();
}

}  // namespace

int main(int argc, char** argv) {
  const auto harness = bench::extract_harness_flags(argc, argv);
  if (harness.harness_mode() || !harness.postmortem_dir.empty()) {
    return run_harness(harness);
  }
  print_fig8a();
  print_intrusiveness();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
