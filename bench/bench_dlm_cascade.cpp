// E3/E4 — Figure 5: lock cascading latency vs number of waiting processes.
//
//   (a) shared waiters behind one exclusive holder: N-CoSED grants the
//       whole batch at release (near-flat), DQNL serializes a grant chain
//       (steep linear; paper: up to ~317 % worse at 16 nodes), SRSL pays a
//       server round trip per grant (linear).
//   (b) exclusive waiters: N-CoSED/DQNL hand off peer-to-peer (~39 % better
//       than SRSL in the paper).
//
// Also prints the Figure 4 sanity table: one-sided op counts for
// uncontended lock/unlock.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/table.hpp"
#include "dlm/dqnl.hpp"
#include "dlm/ncosed.hpp"
#include "dlm/srsl.hpp"
#include "harness.hpp"

namespace {

using namespace dcs;
using dlm::LockMode;

enum class Scheme { kSrsl, kDqnl, kNcosed };
const char* name_of(Scheme s) {
  switch (s) {
    case Scheme::kSrsl: return "SRSL";
    case Scheme::kDqnl: return "DQNL";
    case Scheme::kNcosed: return "N-CoSED";
  }
  return "?";
}

struct World {
  std::unique_ptr<sim::Engine> owned;  // empty when borrowing an engine
  sim::Engine& eng;
  fabric::Fabric fab;
  verbs::Network net;
  std::unique_ptr<dlm::LockManager> mgr;

  explicit World(Scheme scheme) : World(nullptr, scheme) {}
  World(sim::Engine& external, Scheme scheme) : World(&external, scheme) {}

 private:
  World(sim::Engine* external, Scheme scheme)
      : owned(external != nullptr ? nullptr : std::make_unique<sim::Engine>()),
        eng(external != nullptr ? *external : *owned),
        fab(eng, fabric::FabricParams{},
            {.num_nodes = 20, .cores_per_node = 2}),
        net(fab) {
    switch (scheme) {
      case Scheme::kSrsl: {
        auto srsl = std::make_unique<dlm::SrslLockManager>(net, 0);
        srsl->start();
        mgr = std::move(srsl);
        break;
      }
      case Scheme::kDqnl:
        mgr = std::make_unique<dlm::DqnlLockManager>(net, 0);
        break;
      case Scheme::kNcosed:
        mgr = std::make_unique<dlm::NcosedLockManager>(net, 0);
        break;
    }
  }
};

/// Latency (µs) from the holder's release to the LAST pending waiter grant.
double cascade_latency_on(World& w, LockMode mode, int waiters) {
  SimNanos release_at = 0, last_grant = 0;
  int granted = 0;
  w.eng.spawn([](World& world, SimNanos& rel) -> sim::Task<void> {
    co_await world.mgr->lock_exclusive(1, 0);
    co_await world.eng.delay(milliseconds(2));
    rel = world.eng.now();
    co_await world.mgr->unlock(1, 0);
  }(w, release_at));
  for (int i = 0; i < waiters; ++i) {
    w.eng.spawn([](World& world, fabric::NodeId self, LockMode m, int& g,
                   SimNanos& last) -> sim::Task<void> {
      co_await world.eng.delay(microseconds(100 + 10 * self));
      {
        trace::Request req("dlm.acquire", self, self);
        co_await world.mgr->lock(self, 0, m);
      }
      ++g;
      last = std::max(last, world.eng.now());
      co_await world.mgr->unlock(self, 0);
    }(w, static_cast<fabric::NodeId>(2 + i), mode, granted, last_grant));
  }
  w.eng.run();
  DCS_CHECK(granted == waiters);
  return to_micros(last_grant - release_at);
}

double cascade_latency_us(Scheme scheme, LockMode mode, int waiters) {
  World w(scheme);
  return cascade_latency_on(w, mode, waiters);
}

const std::vector<int> kWaiters = {1, 2, 4, 8, 16};

void print_fig5(LockMode mode, const char* title) {
  Table table({"# waiting", "SRSL (us)", "DQNL (us)", "N-CoSED (us)"});
  for (const int n : kWaiters) {
    table.add_row(std::to_string(n),
                  {cascade_latency_us(Scheme::kSrsl, mode, n),
                   cascade_latency_us(Scheme::kDqnl, mode, n),
                   cascade_latency_us(Scheme::kNcosed, mode, n)},
                  1);
  }
  table.print(title);
}

void print_fig4_op_counts() {
  Table table({"operation", "one-sided ops", "messages"});
  World w(Scheme::kNcosed);
  auto count = [&w](const char* label, auto&& action) {
    const auto ops0 = w.net.hca(1).one_sided_ops();
    const auto msg0 = w.net.hca(1).messages_sent();
    w.eng.spawn(action(w));
    w.eng.run();
    return std::vector<std::string>{
        label, std::to_string(w.net.hca(1).one_sided_ops() - ops0),
        std::to_string(w.net.hca(1).messages_sent() - msg0)};
  };
  table.add_row(count("exclusive lock (free)", [](World& world) {
    return [](World& ww) -> sim::Task<void> {
      co_await ww.mgr->lock_exclusive(1, 1);
    }(world);
  }));
  table.add_row(count("exclusive unlock (no successor)", [](World& world) {
    return [](World& ww) -> sim::Task<void> {
      co_await ww.mgr->unlock(1, 1);
    }(world);
  }));
  table.add_row(count("shared lock (free)", [](World& world) {
    return [](World& ww) -> sim::Task<void> {
      co_await ww.mgr->lock_shared(1, 2);
    }(world);
  }));
  table.add_row(count("shared unlock", [](World& world) {
    return [](World& ww) -> sim::Task<void> {
      co_await ww.mgr->unlock(1, 2);
    }(world);
  }));
  table.print(
      "Figure 4 — N-CoSED uncontended wire-level op counts "
      "(paper: one CAS / one FAA, no messages)");
}

void print_op_latency_table() {
  Table table({"scheme", "excl lock+unlock (us)", "shared lock+unlock (us)"});
  for (const Scheme scheme :
       {Scheme::kSrsl, Scheme::kDqnl, Scheme::kNcosed}) {
    auto measure = [&scheme](LockMode mode) {
      World w(scheme);
      double us = 0;
      w.eng.spawn([](World& world, LockMode m, double& out) -> sim::Task<void> {
        const auto t0 = world.eng.now();
        constexpr int kIters = 20;
        for (int i = 0; i < kIters; ++i) {
          co_await world.mgr->lock(1, 0, m);
          co_await world.mgr->unlock(1, 0);
        }
        out = to_micros(world.eng.now() - t0) / kIters;
      }(w, mode, us));
      w.eng.run();
      return us;
    };
    table.add_row(name_of(scheme),
                  {measure(LockMode::kExclusive), measure(LockMode::kShared)},
                  1);
  }
  table.print(
      "Uncontended lock+unlock round-trip latency "
      "(one-sided atomics vs server messaging)");
}

void print_throughput_table() {
  Table table({"contending nodes", "SRSL kops/s", "DQNL kops/s",
               "N-CoSED kops/s"});
  for (const int nodes : {1, 4, 8}) {
    std::vector<double> row;
    for (const Scheme scheme :
         {Scheme::kSrsl, Scheme::kDqnl, Scheme::kNcosed}) {
      World w(scheme);
      int total_ops = 0;
      for (int n = 0; n < nodes; ++n) {
        w.eng.spawn([](World& world, fabric::NodeId self, int& ops)
                        -> sim::Task<void> {
          for (int i = 0; i < 60; ++i) {
            co_await world.mgr->lock_exclusive(self, 0);
            co_await world.mgr->unlock(self, 0);
            ++ops;
          }
        }(w, static_cast<fabric::NodeId>(1 + n), total_ops));
      }
      w.eng.run();
      row.push_back(static_cast<double>(total_ops) / to_secs(w.eng.now()) /
                    1000.0);
    }
    table.add_row(std::to_string(nodes), row, 1);
  }
  table.print(
      "Exclusive lock throughput under contention (kops/s, one hot lock)");
}

void BM_Cascade(benchmark::State& state) {
  const auto scheme = static_cast<Scheme>(state.range(0));
  const auto mode =
      state.range(1) == 0 ? LockMode::kShared : LockMode::kExclusive;
  const int waiters = static_cast<int>(state.range(2));
  for (auto _ : state) {
    state.SetIterationTime(cascade_latency_us(scheme, mode, waiters) * 1e-6);
  }
  state.SetLabel(std::string(name_of(scheme)) +
                 (mode == LockMode::kShared ? "/shared/" : "/excl/") +
                 std::to_string(waiters));
}
BENCHMARK(BM_Cascade)
    ->ArgsProduct({{0, 1, 2}, {0, 1}, {4, 16}})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

// Harnessed scenarios (docs/BENCHMARKS.md): per scheme, the Figure 5
// shared-cascade latency at 8 waiters plus uncontended lock+unlock
// round trips (each acquisition a trace::Request, so lock-wait shows up
// in the attribution).
int run_harness(const bench::HarnessOptions& opts) {
  bench::Harness h("dlm_cascade", opts);
  for (const Scheme scheme :
       {Scheme::kSrsl, Scheme::kDqnl, Scheme::kNcosed}) {
    h.run(std::string("cascade/shared/8/") + name_of(scheme),
          [scheme](bench::Scenario& s) {
            World w(s.engine(), scheme);
            s.metric("cascade_us", cascade_latency_on(w, LockMode::kShared, 8));
          });
    h.run(std::string("uncontended/") + name_of(scheme),
          [scheme](bench::Scenario& s) {
            World w(s.engine(), scheme);
            w.eng.spawn([](World& world, bench::Scenario& out)
                            -> sim::Task<void> {
              constexpr int kIters = 20;
              for (int i = 0; i < kIters; ++i) {
                const auto t0 = world.eng.now();
                {
                  trace::Request req("dlm.roundtrip", 1,
                                     static_cast<std::uint64_t>(i));
                  co_await world.mgr->lock(1, 0, LockMode::kExclusive);
                  co_await world.mgr->unlock(1, 0);
                }
                out.latency_ns(static_cast<double>(world.eng.now() - t0));
              }
            }(w, s));
            w.eng.run();
          });
  }
  return h.finish();
}

}  // namespace

int main(int argc, char** argv) {
  const auto harness = bench::extract_harness_flags(argc, argv);
  if (harness.harness_mode() || !harness.postmortem_dir.empty()) {
    return run_harness(harness);
  }
  print_fig4_op_counts();
  print_op_latency_table();
  print_throughput_table();
  print_fig5(LockMode::kShared,
             "Figure 5a — shared-lock cascade latency after release "
             "(paper: N-CoSED up to ~317 % better than DQNL at 16)");
  print_fig5(LockMode::kExclusive,
             "Figure 5b — exclusive-lock cascade latency after release "
             "(paper: N-CoSED ~39 % better than SRSL)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
