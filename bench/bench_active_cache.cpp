// E18 — Section 3 / [12]: active caching of dynamic content with strong
// coherency.  A proxy serves dynamic pages composed of multiple backend
// dependencies while writers keep updating those dependencies.
//
// Paper claim: RDMA-based version validation gives strong coherency
// (zero stale responses) at close to cache-hit cost, where TTL-based
// invalidation must choose between staleness and recompute load.
#include <benchmark/benchmark.h>

#include "cache/active_cache.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/zipf.hpp"

namespace {

using namespace dcs;
using cache::ActiveCache;
using cache::DataObject;
using cache::DynamicPolicy;

struct Outcome {
  double mean_latency_us;
  double stale_fraction;
  double recompute_fraction;
};

Outcome run_policy(DynamicPolicy policy, SimNanos update_period) {
  sim::Engine eng;
  fabric::Fabric fab(eng, fabric::FabricParams{},
                     {.num_nodes = 4, .cores_per_node = 2,
                      .mem_per_node = 2u << 20});
  verbs::Network net(fab);
  ddss::Ddss substrate(net);
  substrate.start();

  // 8 data objects on nodes 2-3; 16 pages, 2-3 dependencies each.
  std::vector<std::unique_ptr<DataObject>> objects;
  eng.spawn([](ddss::Ddss& d,
               std::vector<std::unique_ptr<DataObject>>& objs)
                -> sim::Task<void> {
    for (int i = 0; i < 8; ++i) {
      auto client = d.client(static_cast<fabric::NodeId>(2 + i % 2));
      auto alloc = co_await client.allocate(64, ddss::Coherence::kVersion,
                                            ddss::Placement::kLocal);
      co_await client.put(alloc, std::vector<std::byte>(64, std::byte{1}));
      objs.push_back(std::make_unique<DataObject>(client, alloc));
    }
  }(substrate, objects));
  eng.run();

  ActiveCache cache(substrate, 1, policy, {.ttl = milliseconds(20)});
  Rng setup_rng(7);
  for (int p = 0; p < 16; ++p) {
    std::vector<const DataObject*> deps;
    const int ndeps = 2 + static_cast<int>(setup_rng.uniform(2));
    for (int d = 0; d < ndeps; ++d) {
      deps.push_back(objects[setup_rng.uniform(objects.size())].get());
    }
    cache.register_doc("page" + std::to_string(p), deps);
  }

  // Writers update random objects with the given period.
  eng.spawn([](sim::Engine& e,
               std::vector<std::unique_ptr<DataObject>>& objs,
               SimNanos period) -> sim::Task<void> {
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
      co_await e.delay(period);
      auto& obj = *objs[rng.uniform(objs.size())];
      co_await obj.update(std::vector<std::byte>(
          64, static_cast<std::byte>(i & 0xff)));
    }
  }(eng, objects, update_period));

  // Reader: Zipf over pages, continuous.
  RunningStat latency;
  eng.spawn([](sim::Engine& e, ActiveCache& c, RunningStat& lat)
                -> sim::Task<void> {
    Rng rng(13);
    ZipfSampler zipf(16, 0.8);
    for (int i = 0; i < 1200; ++i) {
      const auto t0 = e.now();
      (void)co_await c.serve("page" + std::to_string(zipf.sample(rng)));
      lat.add(to_micros(e.now() - t0));
      co_await e.delay(microseconds(150));
    }
  }(eng, cache, latency));
  eng.run();

  const auto& s = cache.stats();
  return Outcome{
      latency.mean(),
      static_cast<double>(s.stale_served) / static_cast<double>(s.requests),
      static_cast<double>(s.recomputed) / static_cast<double>(s.requests)};
}

void print_table() {
  Table table({"policy", "mean latency (us)", "stale responses",
               "recompute fraction"});
  for (const auto policy : {DynamicPolicy::kNoCache, DynamicPolicy::kTtl,
                            DynamicPolicy::kStrong}) {
    const auto r = run_policy(policy, milliseconds(2));
    table.add_row({to_string(policy), Table::fmt(r.mean_latency_us, 0),
                   Table::fmt(100 * r.stale_fraction, 1) + " %",
                   Table::fmt(100 * r.recompute_fraction, 1) + " %"});
  }
  table.print(
      "Section 3/[12] — dynamic-content caching with multiple dependencies "
      "(strong RDMA validation: zero staleness at near-hit cost)");
}

void BM_ActiveCache(benchmark::State& state) {
  const auto policy = static_cast<DynamicPolicy>(state.range(0));
  for (auto _ : state) {
    const auto r = run_policy(policy, milliseconds(2));
    state.counters["stale_pct"] = 100 * r.stale_fraction;
    state.SetIterationTime(r.mean_latency_us * 1e-6 * 1200);
  }
  state.SetLabel(to_string(policy));
}
BENCHMARK(BM_ActiveCache)->DenseRange(0, 2)->UseManualTime()->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
