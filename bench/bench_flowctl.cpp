// E9 — Section 6: credit-based vs packetized flow control.
//
// Paper shape: with 8 KB staging buffers, two 1-byte messages waste 99.98 %
// of a credit each under credit-based flow control; sender-managed
// packetized packing recovers close to an order of magnitude of
// small-message throughput.  Full-buffer messages are equivalent.
#include <benchmark/benchmark.h>

#include "common/table.hpp"
#include "sockets/flowctl.hpp"

namespace {

using namespace dcs;
using sockets::CreditStream;
using sockets::FlowConfig;
using sockets::PacketizedStream;

struct FlowOutcome {
  double msgs_per_sec;
  double mbytes_per_sec;
  double buffer_utilization;
};

template <typename Stream>
FlowOutcome run_stream(std::size_t msg_bytes, int count) {
  sim::Engine eng;
  fabric::Fabric fab(eng, fabric::FabricParams{}, {.num_nodes = 2});
  verbs::Network net(fab);
  Stream stream(net, 0, 1, FlowConfig{});
  stream.start_receiver();
  SimNanos elapsed = 0;
  eng.spawn([](Stream& s, sim::Engine& e, std::size_t m, int n,
               SimNanos& done) -> sim::Task<void> {
    for (int i = 0; i < n; ++i) co_await s.send(m);
    if constexpr (requires { s.flush(); }) co_await s.flush();
    co_await s.quiesce();
    done = e.now();
    e.stop();
  }(stream, eng, msg_bytes, count, elapsed));
  eng.run_until(seconds(1000));
  DCS_CHECK(elapsed > 0);
  const double secs = to_secs(elapsed);
  return FlowOutcome{
      count / secs,
      static_cast<double>(stream.stats().payload_bytes) / secs / 1e6,
      stream.stats().buffer_utilization(FlowConfig{}.buffer_bytes)};
}

const std::vector<std::size_t> kSizes = {64, 256, 1024, 4096, 8192};

void print_table() {
  Table table({"msg size", "credit msgs/s", "packetized msgs/s", "speedup",
               "credit util %", "packetized util %"});
  for (const std::size_t size : kSizes) {
    const int count = size <= 1024 ? 2000 : 500;
    const auto credit = run_stream<CreditStream>(size, count);
    const auto packed = run_stream<PacketizedStream>(size, count);
    table.add_row({std::to_string(size) + " B",
                   Table::fmt(credit.msgs_per_sec, 0),
                   Table::fmt(packed.msgs_per_sec, 0),
                   Table::fmt(packed.msgs_per_sec / credit.msgs_per_sec, 1) +
                       "x",
                   Table::fmt(100 * credit.buffer_utilization, 2),
                   Table::fmt(100 * packed.buffer_utilization, 2)});
  }
  table.print(
      "Section 6 — credit-based vs packetized flow control "
      "(paper: ~order of magnitude for small messages)");
}

void BM_Flow(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(1));
  const int count = 1000;
  for (auto _ : state) {
    const auto r = state.range(0) == 0
                       ? run_stream<CreditStream>(size, count)
                       : run_stream<PacketizedStream>(size, count);
    state.counters["msgs_per_sec"] = r.msgs_per_sec;
    state.SetIterationTime(count / r.msgs_per_sec);
  }
  state.SetLabel(std::string(state.range(0) == 0 ? "credit" : "packetized") +
                 "/" + std::to_string(size) + "B");
}
BENCHMARK(BM_Flow)
    ->ArgsProduct({{0, 1}, {64, 8192}})
    ->UseManualTime()
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
