// E11 — Section 6: fine-grained vs coarse-grained dynamic reconfiguration.
//
// A load spike shifts demand from site B to site A.  A manager with a
// millisecond-scale RDMA-fed monitoring loop repurposes nodes almost
// immediately; a conventional coarse (second-scale) loop leaves site A
// under-provisioned for the whole interval.  Paper claim: about an order
// of magnitude benefit in adaptation time for the fine-grained module.
#include <benchmark/benchmark.h>

#include "common/table.hpp"
#include "reconfig/reconfig.hpp"

namespace {

using namespace dcs;

struct AdaptResult {
  double time_to_adapt_ms;   // spike -> first reassignment
  double spike_latency_us;   // mean request latency during the spike window
  std::uint64_t moves;
};

AdaptResult run(SimNanos manager_interval) {
  sim::Engine eng;
  fabric::Fabric fab(eng, fabric::FabricParams{},
                     {.num_nodes = 7, .cores_per_node = 1});
  verbs::Network net(fab);
  sockets::TcpNetwork tcp(fab);
  monitor::ResourceMonitor mon(net, tcp, 0, {1, 2, 3, 4, 5, 6},
                               monitor::MonScheme::kRdmaSync);
  mon.start();
  reconfig::ReconfigService svc(
      net, mon, 0, {1, 2, 3, 4, 5, 6}, 2,
      {.monitor_interval = manager_interval, .history_window = 2});
  svc.start();

  const SimNanos spike_at = milliseconds(100);
  const SimNanos spike_end = seconds(8);

  // Site 0 request generators: light before the spike, heavy after.
  LatencySamples spike_latency;
  for (int session = 0; session < 8; ++session) {
    eng.spawn([](sim::Engine& e, fabric::Fabric& f,
                 reconfig::ReconfigService& s, SimNanos start, SimNanos end,
                 LatencySamples& lat) -> sim::Task<void> {
      co_await e.delay(start);
      while (e.now() < end) {
        const auto t0 = e.now();
        const auto server = co_await s.pick_server(0);
        co_await f.tcp_wire_transfer(0, server, 256);
        co_await f.node(server).execute(microseconds(2500));
        co_await f.tcp_wire_transfer(server, 0, 8192);
        lat.add(to_micros(e.now() - t0));
      }
    }(eng, fab, svc, spike_at, spike_end, spike_latency));
  }
  // Site 1 trickle (so it is not empty).
  eng.spawn([](sim::Engine& e, fabric::Fabric& f,
               reconfig::ReconfigService& s, SimNanos end) -> sim::Task<void> {
    while (e.now() < end) {
      const auto server = co_await s.pick_server(1);
      co_await f.node(server).execute(microseconds(300));
      co_await e.delay(milliseconds(5));
    }
  }(eng, fab, svc, spike_end));

  eng.run_until(spike_end + milliseconds(10));

  AdaptResult result{};
  result.moves = svc.reconfigurations();
  result.time_to_adapt_ms =
      svc.events().empty()
          ? to_millis(spike_end - spike_at)
          : to_millis(svc.events().front().at - spike_at);
  result.spike_latency_us = spike_latency.mean();
  return result;
}

void print_table() {
  Table table({"manager interval", "time-to-adapt (ms)",
               "mean req latency (us)", "moves"});
  const std::vector<std::pair<const char*, SimNanos>> kIntervals = {
      {"fine   10 ms", milliseconds(10)},
      {"medium 100 ms", milliseconds(100)},
      {"coarse 2 s", seconds(2)},
  };
  for (const auto& [label, interval] : kIntervals) {
    const auto r = run(interval);
    table.add_row({label, Table::fmt(r.time_to_adapt_ms, 1),
                   Table::fmt(r.spike_latency_us, 0),
                   std::to_string(r.moves)});
  }
  table.print(
      "Section 6 — fine- vs coarse-grained reconfiguration under a load "
      "spike (paper: ~order of magnitude adaptation benefit)");
}

void BM_Reconfig(benchmark::State& state) {
  const SimNanos interval = milliseconds(static_cast<SimNanos>(state.range(0)));
  for (auto _ : state) {
    const auto r = run(interval);
    state.counters["time_to_adapt_ms"] = r.time_to_adapt_ms;
    state.SetIterationTime(r.time_to_adapt_ms * 1e-3);
  }
  state.SetLabel(std::to_string(state.range(0)) + "ms-interval");
}
BENCHMARK(BM_Reconfig)->Arg(10)->Arg(2000)->UseManualTime()->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
