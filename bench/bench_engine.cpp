// bench_engine — wall-clock throughput of the simulation engine itself.
//
// Every service in this repository (verbs, SDP, DDSS, N-CoSED, cooperative
// caching) executes on dcs::sim::Engine, so the engine's events/sec is the
// hard ceiling on end-to-end experiment throughput.  This bench drives the
// scheduler's distinct hot paths in isolation:
//
//   timer_churn     future-dated delays across the calendar wheel and the
//                   far-future overflow heap (64 tasks x 2000 random delays);
//   channel_pingpong the same-time ready path: two coroutines bouncing a
//                   token through two channels (schedule_now per hop);
//   spawn_join_storm coroutine-frame allocation churn: batches of short
//                   tasks spawned, joined, and torn down via when_all;
//   fanout_64       a 64-node fan-out/fan-in: when_all over 64 producers
//                   feeding one sink channel, the integrated-bench shape.
//
// Virtual-time results (event counts, end times) are deterministic and go
// into BENCH_engine.json; wall-clock events/sec and ns/event go into the
// non-deterministic BENCH_engine.wall.json sibling (docs/BENCHMARKS.md).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "harness.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace {

using namespace dcs;
using sim::Engine;
using sim::Task;

// --- workloads ------------------------------------------------------------

void timer_churn(Engine& eng, int tasks, int steps) {
  for (int id = 0; id < tasks; ++id) {
    eng.spawn([](Engine& e, int self, int n) -> Task<void> {
      Rng rng(0x7157c000ULL + static_cast<std::uint64_t>(self));
      for (int i = 0; i < n; ++i) {
        // 1 ns .. 10 ms: most delays land in the calendar wheel, the long
        // tail exercises the overflow heap and wheel re-basing.
        co_await e.delay(rng.uniform(1, 10'000'000));
      }
    }(eng, id, steps));
  }
  eng.run();
}

void channel_pingpong(Engine& eng, int rounds) {
  sim::Channel<int> ping(eng);
  sim::Channel<int> pong(eng);
  eng.spawn([](sim::Channel<int>& rx, sim::Channel<int>& tx,
               int n) -> Task<void> {
    for (int i = 0; i < n; ++i) {
      const int v = co_await rx.recv();
      tx.push(v + 1);
    }
  }(ping, pong, rounds));
  eng.spawn([](sim::Channel<int>& tx, sim::Channel<int>& rx,
               int n) -> Task<void> {
    tx.push(0);
    for (int i = 0; i < n; ++i) {
      const int v = co_await rx.recv();
      if (i + 1 < n) tx.push(v + 1);
    }
  }(ping, pong, rounds));
  eng.run();
}

void spawn_join_storm(Engine& eng, int batches, int width) {
  eng.spawn([](Engine& e, int nb, int w) -> Task<void> {
    for (int b = 0; b < nb; ++b) {
      std::vector<Task<void>> tasks;
      tasks.reserve(static_cast<std::size_t>(w));
      for (int i = 0; i < w; ++i) {
        tasks.push_back([](Engine& e2) -> Task<void> {
          co_await e2.yield();
        }(e));
      }
      co_await e.when_all(std::move(tasks));
    }
  }(eng, batches, width));
  eng.run();
}

void fanout_64(Engine& eng, int msgs_per_node) {
  constexpr int kNodes = 64;
  sim::Channel<int> sink(eng);
  eng.spawn([](Engine& e, sim::Channel<int>& out, int msgs) -> Task<void> {
    std::vector<Task<void>> nodes;
    nodes.reserve(kNodes);
    for (int id = 0; id < kNodes; ++id) {
      nodes.push_back([](Engine& e2, sim::Channel<int>& o, int self,
                         int m) -> Task<void> {
        Rng rng(0xfa0000ULL + static_cast<std::uint64_t>(self));
        for (int i = 0; i < m; ++i) {
          co_await e2.delay(rng.uniform(100, 5000));
          o.push(self);
        }
      }(e, out, id, msgs));
    }
    co_await e.when_all(std::move(nodes));
  }(eng, sink, msgs_per_node));
  eng.spawn([](sim::Channel<int>& in, int total) -> Task<void> {
    for (int i = 0; i < total; ++i) (void)co_await in.recv();
  }(sink, kNodes * msgs_per_node));
  eng.run();
}

// --- harness scenarios ----------------------------------------------------

int run_harness(const bench::HarnessOptions& opts) {
  bench::Harness h("engine", opts);
  h.run("timer_churn/64x2000", [](bench::Scenario& s) {
    timer_churn(s.engine(), 64, 2000);
    s.metric("events", static_cast<double>(s.engine().events_dispatched()));
  });
  h.run("channel_pingpong/200k", [](bench::Scenario& s) {
    channel_pingpong(s.engine(), 200'000);
    s.metric("events", static_cast<double>(s.engine().events_dispatched()));
  });
  h.run("spawn_join_storm/4000x16", [](bench::Scenario& s) {
    spawn_join_storm(s.engine(), 4000, 16);
    s.metric("events", static_cast<double>(s.engine().events_dispatched()));
  });
  h.run("fanout_64/1000", [](bench::Scenario& s) {
    fanout_64(s.engine(), 1000);
    s.metric("events", static_cast<double>(s.engine().events_dispatched()));
  });
  return h.finish();
}

// --- google-benchmark path ------------------------------------------------

void BM_TimerChurn(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    Engine eng;
    timer_churn(eng, 16, static_cast<int>(state.range(0)));
    events += eng.events_dispatched();
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TimerChurn)->Arg(500)->Arg(2000);

void BM_ChannelPingPong(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    Engine eng;
    channel_pingpong(eng, static_cast<int>(state.range(0)));
    events += eng.events_dispatched();
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ChannelPingPong)->Arg(10'000)->Arg(100'000);

void BM_SpawnJoinStorm(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    Engine eng;
    spawn_join_storm(eng, static_cast<int>(state.range(0)), 16);
    events += eng.events_dispatched();
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SpawnJoinStorm)->Arg(200)->Arg(1000);

void BM_Fanout64(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    Engine eng;
    fanout_64(eng, static_cast<int>(state.range(0)));
    events += eng.events_dispatched();
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Fanout64)->Arg(250)->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
  const auto harness = dcs::bench::extract_harness_flags(argc, argv);
  // No single-run observed path here: --postmortem-dir rides the harness
  // (a flight recorder is armed around every scenario).
  if (harness.harness_mode() || !harness.postmortem_dir.empty()) {
    return run_harness(harness);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
