// E8 — Figure 8b: data-center throughput improvement from monitor-driven
// load balancing, vs Zipf alpha, for Socket-Sync / RDMA-Async / RDMA-Sync /
// e-RDMA-Sync relative to the Socket-Async baseline.
//
// Workload: two hosted services — a Zipf-popularity document service
// (popular documents are cheap cache hits, unpopular ones cost app/db
// work) and a RUBiS-like auction mix.  Lower alpha = less locality = more
// heavy requests and more imbalance, which accurate fine-grained
// monitoring turns into throughput (paper: ~35 % improvement for the
// RDMA-based schemes).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/table.hpp"
#include "common/zipf.hpp"
#include "datacenter/workload.hpp"
#include "harness.hpp"
#include "monitor/monitor.hpp"
#include "trace/hot.hpp"

namespace {

using namespace dcs;
using monitor::MonScheme;

constexpr std::size_t kNumDocs = 1000;
constexpr std::size_t kRequests = 1500;
constexpr std::size_t kSessions = 12;

const std::vector<double> kAlphas = {0.9, 0.75, 0.5, 0.25};
const std::vector<MonScheme> kSchemes = {
    MonScheme::kSocketSync, MonScheme::kRdmaAsync, MonScheme::kRdmaSync,
    MonScheme::kERdmaSync};

/// Marks a RUBiS request, which has no document rank to attribute.
constexpr std::size_t kNoDoc = ~std::size_t{0};

struct Request {
  SimNanos cpu;
  std::size_t reply_bytes;
  std::size_t doc = kNoDoc;  // Zipf document rank (kNoDoc for RUBiS ops)
};

std::vector<Request> make_mixed_trace(double alpha) {
  Rng rng(4242);
  ZipfSampler zipf(kNumDocs, alpha);
  const auto rubis = datacenter::make_rubis_trace(kRequests, 777);
  std::vector<Request> trace;
  trace.reserve(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    if (rng.chance(0.7)) {
      // Document service: popular ranks are cached (cheap); the tail costs
      // application work.
      const auto rank = zipf.sample(rng);
      const bool popular = rank < kNumDocs / 10;
      trace.push_back(Request{popular ? microseconds(150) : microseconds(1400),
                              16384, rank});
    } else {
      const auto& op = datacenter::rubis_mix()[rubis[i]];
      trace.push_back(Request{op.cpu, op.reply_bytes});
    }
  }
  return trace;
}

double throughput_tps(MonScheme scheme, double alpha,
                      std::size_t cores_per_node = 1) {
  sim::Engine eng;
  fabric::Fabric fab(eng, fabric::FabricParams{},
                     {.num_nodes = 5, .cores_per_node = cores_per_node});
  verbs::Network net(fab);
  sockets::TcpNetwork tcp(fab);
  // Async intervals reflect each transport's sustainable granularity: a
  // socket push daemon burns target CPU per push (5 ms is already chatty
  // for 2006-era daemons), while RDMA polls are free for the target and
  // can run at millisecond granularity — the paper's core argument.
  const SimNanos interval = scheme == MonScheme::kRdmaAsync
                                ? milliseconds(1)
                                : milliseconds(5);
  monitor::ResourceMonitor mon(net, tcp, 0, {1, 2, 3, 4}, scheme,
                               {.async_interval = interval});
  mon.start();
  monitor::MonitoredDispatcher disp(net, mon);

  const auto trace = make_mixed_trace(alpha);
  SimNanos finished_at = 0;
  // Closed-loop sessions pull from a shared cursor.
  std::size_t cursor = 0;
  for (std::size_t s = 0; s < kSessions; ++s) {
    eng.spawn([](sim::Engine& e, monitor::MonitoredDispatcher& d,
                 const std::vector<Request>& reqs, std::size_t& cur,
                 SimNanos& done) -> sim::Task<void> {
      co_await e.delay(milliseconds(1));
      while (cur < reqs.size()) {
        const Request r = reqs[cur++];
        // Attribute document heat at dispatch: a no-op unless a hot sink
        // is armed (--hotset-out / --hot-keys via the bench harness).
        if (r.doc != kNoDoc) DCS_HOT("monitor.doc", r.doc, 1);
        co_await d.dispatch(r.cpu, r.reply_bytes);
      }
      done = std::max(done, e.now());
    }(eng, disp, trace, cursor, finished_at));
  }
  eng.run_until(seconds(30));
  DCS_CHECK(disp.completed() == kRequests);
  return static_cast<double>(kRequests) /
         to_secs(finished_at - milliseconds(1));
}

void print_fig8b() {
  std::vector<std::string> header = {"scheme"};
  for (const double a : kAlphas) header.push_back("a=" + Table::fmt(a, 2));
  Table table(header);
  std::vector<double> baseline;
  for (const double a : kAlphas) {
    baseline.push_back(throughput_tps(MonScheme::kSocketAsync, a));
  }
  {
    std::vector<std::string> row = {"Socket-Async (baseline TPS)"};
    for (const double b : baseline) row.push_back(Table::fmt(b, 0));
    table.add_row(row);
  }
  for (const auto scheme : kSchemes) {
    std::vector<std::string> row = {std::string(monitor::to_string(scheme)) +
                                    " (% impr.)"};
    for (std::size_t i = 0; i < kAlphas.size(); ++i) {
      const double tps = throughput_tps(scheme, kAlphas[i]);
      row.push_back(Table::fmt(100.0 * (tps / baseline[i] - 1.0), 1));
    }
    table.add_row(row);
  }
  table.print(
      "Figure 8b — throughput improvement over Socket-Async vs Zipf alpha "
      "(paper: ~35 % for RDMA-based schemes)");
}

/// --cores-per-node variant (a NEW experiment row, the single-core Figure
/// 8b above is untouched): with per-node CPU headroom the sync socket
/// query no longer steals the only core serving requests, so Socket-Sync
/// recovers most of the gap to the RDMA schemes — which localizes the
/// paper's single-core penalty to CPU contention, not protocol latency.
void print_cores_variant(std::size_t cores) {
  std::vector<std::string> header = {"scheme"};
  for (const double a : kAlphas) header.push_back("a=" + Table::fmt(a, 2));
  Table table(header);
  std::vector<double> baseline;
  for (const double a : kAlphas) {
    baseline.push_back(throughput_tps(MonScheme::kSocketAsync, a, cores));
  }
  {
    std::vector<std::string> row = {"Socket-Async (baseline TPS)"};
    for (const double b : baseline) row.push_back(Table::fmt(b, 0));
    table.add_row(row);
  }
  for (const auto scheme : kSchemes) {
    std::vector<std::string> row = {std::string(monitor::to_string(scheme)) +
                                    " (% impr.)"};
    for (std::size_t i = 0; i < kAlphas.size(); ++i) {
      const double tps = throughput_tps(scheme, kAlphas[i], cores);
      row.push_back(Table::fmt(100.0 * (tps / baseline[i] - 1.0), 1));
    }
    table.add_row(row);
  }
  table.print("Figure 8b variant — " + std::to_string(cores) +
              " cores/node (Socket-Sync recovers with CPU headroom)");
}

/// Harnessed scenarios (docs/BENCHMARKS.md): one scenario per
/// scheme/alpha pair reporting the TPS metric and recording the Zipf skew
/// in the wall JSON (`zipf_alpha`), so regressions can be compared at
/// matched skew.  Under --hotset-out / --hot-keys the harness arms the
/// ambient hot sink and the dispatch-time DCS_HOT("monitor.doc", ...)
/// feeds the top-K sketch with document ranks.
int run_harness(const bench::HarnessOptions& opts) {
  bench::Harness h("monitor_zipf", opts);
  for (const auto scheme : kSchemes) {
    for (const double alpha : kAlphas) {
      h.run(std::string(monitor::to_string(scheme)) + "/a=" +
                Table::fmt(alpha, 2),
            [&](bench::Scenario& s) {
              const double tps = throughput_tps(scheme, alpha);
              s.zipf_alpha(alpha);
              s.metric("tps", tps);
            });
    }
  }
  return h.finish();
}

void BM_MonitorZipf(benchmark::State& state) {
  const auto scheme = state.range(0) == 0 ? MonScheme::kSocketAsync
                                          : kSchemes[static_cast<std::size_t>(
                                                state.range(0) - 1)];
  const double alpha = kAlphas[static_cast<std::size_t>(state.range(1))];
  for (auto _ : state) {
    const double tps = throughput_tps(scheme, alpha);
    state.counters["TPS"] = tps;
    state.SetIterationTime(kRequests / tps);
  }
  state.SetLabel(std::string(monitor::to_string(scheme)) + "/a=" +
                 Table::fmt(alpha, 2));
}
BENCHMARK(BM_MonitorZipf)
    ->ArgsProduct({{0, 3, 4}, {0, 3}})
    ->UseManualTime()
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  const auto flags = bench::extract_harness_flags(argc, argv);
  if (flags.harness_mode()) return run_harness(flags);
  // Strip --cores-per-node=N before google-benchmark sees the argv.
  std::size_t cores_variant = 0;
  for (int i = 1; i < argc; ++i) {
    constexpr const char* kFlag = "--cores-per-node=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      cores_variant = static_cast<std::size_t>(
          std::strtoull(argv[i] + std::strlen(kFlag), nullptr, 10));
      if (cores_variant == 0) {
        std::fprintf(stderr, "monitor_zipf: --cores-per-node must be > 0\n");
        return 2;
      }
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      argv[argc] = nullptr;
      break;
    }
  }
  print_fig8b();
  if (cores_variant > 1) print_cores_variant(cores_variant);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
