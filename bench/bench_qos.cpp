// QoS prioritization + admission control ([4] and the paper's "controlling
// overload scenarios"): soft-QoS latency protection under overload, and
// admission control keeping admitted-request latency bounded while the
// offered load grows past capacity.
#include <benchmark/benchmark.h>

#include "common/table.hpp"
#include "datacenter/admission.hpp"
#include "datacenter/qos.hpp"

namespace {

using namespace dcs;
using datacenter::AdmissionController;
using datacenter::QosScheduler;

// --- QoS: premium protection under a standard-class flood ------------------

struct QosOutcome {
  double premium_p95_us;
  double standard_p95_us;
  double premium_share;
};

QosOutcome run_qos(double premium_weight) {
  sim::Engine eng;
  fabric::Fabric fab(eng, fabric::FabricParams{},
                     {.num_nodes = 1, .cores_per_node = 1});
  QosScheduler sched(fab, 0,
                     {{"premium", premium_weight}, {"standard", 1.0}});
  sched.start();
  // Both classes arrive open-loop beyond capacity (premium 1x, standard
  // 2x the core), so the weights decide who eats the backlog.
  eng.spawn([](sim::Engine& e, QosScheduler& q) -> sim::Task<void> {
    for (int i = 0; i < 700; ++i) {
      e.spawn(q.submit(1, microseconds(400)));   // standard
      co_await e.delay(microseconds(200));
      if (i % 2 == 0) e.spawn(q.submit(0, microseconds(400)));  // premium
    }
  }(eng, sched));
  eng.run_until(milliseconds(140));

  auto& prem = const_cast<datacenter::QosClassStats&>(sched.stats(0));
  auto& stan = const_cast<datacenter::QosClassStats&>(sched.stats(1));
  const double total_cpu =
      static_cast<double>(prem.cpu_consumed + stan.cpu_consumed);
  return QosOutcome{prem.latency_us.percentile(95),
                    stan.latency_us.percentile(95),
                    total_cpu > 0 ? prem.cpu_consumed / total_cpu : 0};
}

void print_qos_table() {
  Table table({"premium weight", "premium p95 (us)", "standard p95 (us)",
               "premium CPU share"});
  for (const double weight : {1.0, 2.0, 4.0, 8.0}) {
    const auto r = run_qos(weight);
    table.add_row({"x" + Table::fmt(weight, 0),
                   Table::fmt(r.premium_p95_us, 0),
                   Table::fmt(r.standard_p95_us, 0),
                   Table::fmt(100 * r.premium_share, 1) + " %"});
  }
  table.print(
      "Soft QoS ([4]) — premium latency under a standard-class flood "
      "(higher weight -> tighter premium tail, standard absorbs the queue)");
}

// --- admission control under rising offered load ----------------------------

struct AdmOutcome {
  double admitted_p95_us;
  double drop_rate;
  std::uint64_t served;
};

AdmOutcome run_admission(int sessions, bool with_admission) {
  sim::Engine eng;
  fabric::Fabric fab(eng, fabric::FabricParams{},
                     {.num_nodes = 4, .cores_per_node = 1});
  verbs::Network net(fab);
  sockets::TcpNetwork tcp(fab);
  monitor::ResourceMonitor mon(net, tcp, 0, {1, 2, 3},
                               monitor::MonScheme::kRdmaSync);
  mon.start();
  AdmissionController adm(
      net, mon,
      {.max_load_per_node = with_admission ? 2.0 : 1e9,
       .retry_backoff = milliseconds(1),
       .max_retries = 2});
  for (int s = 0; s < sessions; ++s) {
    eng.spawn([](sim::Engine& e, AdmissionController& a) -> sim::Task<void> {
      for (int i = 0; i < 60; ++i) {
        (void)co_await a.offer(microseconds(1200), 2048);
        co_await e.delay(microseconds(200));
      }
    }(eng, adm));
  }
  eng.run_until(seconds(3));
  auto& stats = const_cast<datacenter::AdmissionStats&>(adm.stats());
  return AdmOutcome{stats.admitted_latency_us.percentile(95),
                    stats.drop_rate(), stats.admitted};
}

void print_admission_table() {
  Table table({"closed-loop sessions", "policy", "admitted p95 (us)",
               "drop rate", "served"});
  for (const int sessions : {4, 12, 24}) {
    for (const bool on : {false, true}) {
      const auto r = run_admission(sessions, on);
      table.add_row({std::to_string(sessions),
                     on ? "admission control" : "admit everything",
                     Table::fmt(r.admitted_p95_us, 0),
                     Table::fmt(100 * r.drop_rate, 1) + " %",
                     std::to_string(r.served)});
    }
  }
  table.print(
      "Admission control — bounded latency for admitted requests as "
      "offered load passes capacity (shed instead of queue)");
}

void BM_Qos(benchmark::State& state) {
  const double weight = static_cast<double>(state.range(0));
  for (auto _ : state) {
    const auto r = run_qos(weight);
    state.counters["premium_p95_us"] = r.premium_p95_us;
    state.SetIterationTime(0.3);
  }
  state.SetLabel("weight_x" + std::to_string(state.range(0)));
}
BENCHMARK(BM_Qos)->Arg(1)->Arg(4)->UseManualTime()->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_qos_table();
  print_admission_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
