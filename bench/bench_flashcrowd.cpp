// E20 — "controlling overload scenarios" (the paper's opening motivation),
// end to end: a flash crowd multiplies one site's arrival rate 10x for
// half a second.  Four configurations of the framework's control services:
//
//   none                 every request queues; latency explodes for both
//                        sites and the crowd's damage outlasts the spike;
//   admission            excess load is shed at the front door; admitted
//                        requests keep bounded latency;
//   reconfig             capacity chases the crowd (nodes move to the hot
//                        site) but everything arriving before the move
//                        still queues;
//   admission+reconfig   shed the initial surge, then absorb the crowd
//                        with repurposed capacity — fewer drops than
//                        admission alone, bounded latency throughout.
//
// All three services run on the RDMA monitoring primitive.
#include <benchmark/benchmark.h>

#include "common/table.hpp"
#include "datacenter/admission.hpp"
#include "reconfig/reconfig.hpp"

namespace {

using namespace dcs;

struct Config {
  bool admission;
  bool reconfig;
};

struct Outcome {
  double p95_us;        // site-0 latency of served requests
  double drop_rate;     // of site-0 requests
  double other_p95_us;  // collateral damage on the steady site
  std::uint64_t moves;
};

constexpr SimNanos kSpikeStart = milliseconds(200);
constexpr SimNanos kSpikeEnd = milliseconds(700);
constexpr SimNanos kRunEnd = milliseconds(1200);

Outcome run_config(Config config) {
  sim::Engine eng;
  // Node 0: front-end; 1..6: app pool.
  fabric::Fabric fab(eng, fabric::FabricParams{},
                     {.num_nodes = 7, .cores_per_node = 1});
  verbs::Network net(fab);
  sockets::TcpNetwork tcp(fab);
  monitor::ResourceMonitor mon(net, tcp, 0, {1, 2, 3, 4, 5, 6},
                               monitor::MonScheme::kRdmaSync);
  mon.start();
  reconfig::ReconfigService svc(
      net, mon, 0, {1, 2, 3, 4, 5, 6}, 2,
      {.monitor_interval = milliseconds(15),
       .imbalance_threshold = 1.5,
       .history_window = 2,
       .move_cooldown = milliseconds(60),
       .node_repurpose_cost = milliseconds(20)});
  if (config.reconfig) svc.start();
  datacenter::AdmissionController adm(
      net, mon,
      {.max_load_per_node = config.admission ? 4.0 : 1e9,
       .retry_backoff = milliseconds(1),
       .max_retries = 2});

  LatencySamples site0_lat, site1_lat;
  std::uint64_t site0_offered = 0, site0_dropped = 0;

  // One open-loop arrival process per site.  Site 0's rate spikes 10x.
  auto traffic = [](sim::Engine& e, fabric::Fabric& f,
                    reconfig::ReconfigService& s,
                    datacenter::AdmissionController& a, Config cfg,
                    std::uint32_t site, LatencySamples& lat,
                    std::uint64_t& offered,
                    std::uint64_t& dropped) -> sim::Task<void> {
    while (e.now() < kRunEnd) {
      const bool spiking =
          site == 0 && e.now() >= kSpikeStart && e.now() < kSpikeEnd;
      const SimNanos gap = spiking ? microseconds(120) : microseconds(1200);
      co_await e.delay(gap);
      ++offered;
      e.spawn([](sim::Engine& e2, fabric::Fabric& f2,
                 reconfig::ReconfigService& s2,
                 datacenter::AdmissionController& a2, Config c2,
                 std::uint32_t st, LatencySamples& l,
                 std::uint64_t& drop) -> sim::Task<void> {
        const auto t0 = e2.now();
        if (c2.admission && st == 0) {
          // Admission gate only protects the spiking site's pool entry.
          if (!co_await a2.offer(microseconds(900), 4096)) {
            ++drop;
            co_return;
          }
          l.add(to_micros(e2.now() - t0));
          co_return;
        }
        const auto server = co_await s2.pick_server(st);
        co_await f2.tcp_wire_transfer(0, server, 256);
        co_await f2.node(server).execute(microseconds(900));
        co_await f2.tcp_wire_transfer(server, 0, 4096);
        l.add(to_micros(e2.now() - t0));
      }(e, f, s, a, cfg, site, lat, dropped));
    }
  };
  eng.spawn(traffic(eng, fab, svc, adm, config, 0, site0_lat, site0_offered,
                    site0_dropped));
  std::uint64_t dummy_offered = 0, dummy_dropped = 0;
  eng.spawn(traffic(eng, fab, svc, adm, config, 1, site1_lat, dummy_offered,
                    dummy_dropped));
  eng.run_until(kRunEnd + milliseconds(300));

  return Outcome{site0_lat.percentile(95),
                 static_cast<double>(site0_dropped) /
                     static_cast<double>(site0_offered),
                 site1_lat.percentile(95), svc.reconfigurations()};
}

void print_table() {
  Table table({"configuration", "site-0 p95 (us)", "site-0 drops",
               "site-1 p95 (us)", "moves"});
  const std::vector<std::pair<const char*, Config>> kConfigs = {
      {"none", {false, false}},
      {"admission only", {true, false}},
      {"reconfiguration only", {false, true}},
      {"admission + reconfiguration", {true, true}},
  };
  for (const auto& [name, config] : kConfigs) {
    const auto r = run_config(config);
    table.add_row({name, Table::fmt(r.p95_us, 0),
                   Table::fmt(100 * r.drop_rate, 1) + " %",
                   Table::fmt(r.other_p95_us, 0), std::to_string(r.moves)});
  }
  table.print(
      "Flash crowd (10x arrival spike for 500 ms) — the framework's "
      "overload controls, alone and combined");
}

void BM_FlashCrowd(benchmark::State& state) {
  const Config config{(state.range(0) & 1) != 0, (state.range(0) & 2) != 0};
  for (auto _ : state) {
    const auto r = run_config(config);
    state.counters["p95_us"] = r.p95_us;
    state.counters["drop_pct"] = 100 * r.drop_rate;
    state.SetIterationTime(to_secs(kRunEnd));
  }
}
BENCHMARK(BM_FlashCrowd)->DenseRange(0, 3)->UseManualTime()->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
