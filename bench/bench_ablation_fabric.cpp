// Ablations over the fabric cost model (DESIGN.md §6): how sensitive are
// the paper's headline results to the simulator's calibration constants?
//
//   A1  remote-atomic latency x{0.5,1,2,4}  -> N-CoSED shared-cascade
//       latency and DDSS strict put (the one-sided designs' critical path)
//   A2  host memcpy rate sweep              -> the SDP buffered/zero-copy
//       crossover point (which scheme wins at 16 KB)
//   A3  TCP per-message kernel cost sweep   -> socket-monitor latency vs
//       the (unaffected) RDMA monitor
//
// The claim being validated: orderings are robust across a 8x parameter
// range; only magnitudes move.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/table.hpp"
#include "ddss/ddss.hpp"
#include "dlm/ncosed.hpp"
#include "monitor/monitor.hpp"
#include "sockets/sdp.hpp"

namespace {

using namespace dcs;

// --- A1: atomic latency ----------------------------------------------------

double ncosed_shared_cascade_us(double atomic_scale) {
  fabric::FabricParams params;
  params.atomic_execute =
      static_cast<SimNanos>(params.atomic_execute * atomic_scale);
  sim::Engine eng;
  fabric::Fabric fab(eng, params, {.num_nodes = 12, .cores_per_node = 2});
  verbs::Network net(fab);
  dlm::NcosedLockManager mgr(net, 0);
  SimNanos release_at = 0, last_grant = 0;
  int granted = 0;
  eng.spawn([](sim::Engine& e, dlm::LockManager& m, SimNanos& rel)
                -> sim::Task<void> {
    co_await m.lock_exclusive(1, 0);
    co_await e.delay(milliseconds(1));
    rel = e.now();
    co_await m.unlock(1, 0);
  }(eng, mgr, release_at));
  for (int i = 0; i < 8; ++i) {
    eng.spawn([](sim::Engine& e, dlm::LockManager& m, fabric::NodeId self,
                 int& g, SimNanos& last) -> sim::Task<void> {
      co_await e.delay(microseconds(50 + 5 * self));
      co_await m.lock_shared(self, 0);
      ++g;
      last = std::max(last, e.now());
      co_await m.unlock(self, 0);
    }(eng, mgr, static_cast<fabric::NodeId>(2 + i), granted, last_grant));
  }
  eng.run();
  DCS_CHECK(granted == 8);
  return to_micros(last_grant - release_at);
}

double ddss_strict_put_us(double atomic_scale) {
  fabric::FabricParams params;
  params.atomic_execute =
      static_cast<SimNanos>(params.atomic_execute * atomic_scale);
  sim::Engine eng;
  fabric::Fabric fab(eng, params, {.num_nodes = 2, .mem_per_node = 1u << 20});
  verbs::Network net(fab);
  ddss::Ddss substrate(net);
  substrate.start();
  double out = 0;
  eng.spawn([](ddss::Ddss& d, sim::Engine& e, double& us) -> sim::Task<void> {
    auto c = d.client(0);
    auto a = co_await c.allocate(64, ddss::Coherence::kStrict,
                                 ddss::Placement::kRemote);
    std::vector<std::byte> v(64);
    const auto t0 = e.now();
    for (int i = 0; i < 10; ++i) co_await c.put(a, v);
    us = to_micros(e.now() - t0) / 10;
  }(substrate, eng, out));
  eng.run();
  return out;
}

void print_a1() {
  Table table({"atomic latency scale", "N-CoSED shared cascade (us)",
               "DDSS strict put (us)"});
  for (const double scale : {0.5, 1.0, 2.0, 4.0}) {
    table.add_row("x" + Table::fmt(scale, 1),
                  {ncosed_shared_cascade_us(scale), ddss_strict_put_us(scale)},
                  1);
  }
  table.print(
      "Ablation A1 — remote-atomic latency sensitivity "
      "(orderings unchanged; costs scale with the atomic unit)");
}

// --- A2: memcpy rate and the SDP crossover ----------------------------------

SimNanos sdp_run(sockets::SdpMode mode, double copy_rate,
                 std::size_t msg, int count) {
  fabric::FabricParams params;
  params.tcp_copy_bytes_per_ns = copy_rate;
  sim::Engine eng;
  fabric::Fabric fab(eng, params, {.num_nodes = 2});
  verbs::Network net(fab);
  sockets::SdpStream stream(net, 0, 1, mode);
  eng.spawn([](sockets::SdpStream& s, std::size_t m, int n) -> sim::Task<void> {
    for (int i = 0; i < n; ++i) co_await s.send(std::vector<std::byte>(m));
    co_await s.flush();
  }(stream, msg, count));
  eng.spawn([](sockets::SdpStream& s, int n) -> sim::Task<void> {
    for (int i = 0; i < n; ++i) (void)co_await s.recv();
  }(stream, count));
  eng.run();
  return eng.now();
}

void print_a2() {
  Table table({"memcpy rate (B/ns)", "SDP @16K (us)", "ZSDP @16K (us)",
               "winner @16K", "crossover moved?"});
  for (const double rate : {0.25, 0.5, 1.0, 2.0}) {
    const double sdp = to_micros(sdp_run(sockets::SdpMode::kBufferedCopy,
                                         rate, 16384, 50));
    const double zsdp =
        to_micros(sdp_run(sockets::SdpMode::kZeroCopy, rate, 16384, 50));
    table.add_row({Table::fmt(rate, 2), Table::fmt(sdp, 0),
                   Table::fmt(zsdp, 0), sdp < zsdp ? "SDP" : "ZSDP",
                   sdp < zsdp ? "yes: copies cheap enough" : "no"});
  }
  table.print(
      "Ablation A2 — host memcpy rate vs the buffered/zero-copy crossover "
      "(zero-copy wins 16 KB unless copies approach wire speed)");
}

// --- A3: TCP kernel cost and monitoring latency -----------------------------

double monitor_query_us(monitor::MonScheme scheme, double tcp_cpu_scale) {
  fabric::FabricParams params;
  params.tcp_per_message_cpu =
      static_cast<SimNanos>(params.tcp_per_message_cpu * tcp_cpu_scale);
  sim::Engine eng;
  fabric::Fabric fab(eng, params, {.num_nodes = 2, .cores_per_node = 1});
  verbs::Network net(fab);
  sockets::TcpNetwork tcp(fab);
  monitor::ResourceMonitor mon(net, tcp, 0, {1}, scheme);
  mon.start();
  double out = 0;
  eng.spawn([](monitor::ResourceMonitor& m, sim::Engine& e, double& us)
                -> sim::Task<void> {
    co_await e.delay(milliseconds(1));
    const auto t0 = e.now();
    for (int i = 0; i < 10; ++i) (void)co_await m.query(1);
    us = to_micros(e.now() - t0) / 10;
  }(mon, eng, out));
  eng.run_until(seconds(1));
  return out;
}

void print_a3() {
  Table table({"TCP kernel-cost scale", "Socket-Sync query (us)",
               "RDMA-Sync query (us)", "ratio"});
  for (const double scale : {0.5, 1.0, 2.0, 4.0}) {
    const double sock =
        monitor_query_us(monitor::MonScheme::kSocketSync, scale);
    const double rdma =
        monitor_query_us(monitor::MonScheme::kRdmaSync, scale);
    table.add_row({"x" + Table::fmt(scale, 1), Table::fmt(sock, 1),
                   Table::fmt(rdma, 1), Table::fmt(sock / rdma, 1) + "x"});
  }
  table.print(
      "Ablation A3 — TCP kernel cost sensitivity "
      "(RDMA monitoring latency is independent of the host stack)");
}

void BM_AblationAtomic(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 2.0;
  for (auto _ : state) {
    state.SetIterationTime(ncosed_shared_cascade_us(scale) * 1e-6);
  }
  state.SetLabel("atomic_x" + Table::fmt(scale, 1));
}
BENCHMARK(BM_AblationAtomic)->Arg(1)->Arg(2)->Arg(8)->UseManualTime()
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_a1();
  print_a2();
  print_a3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
