// E5/E6 — Figure 6: data-center throughput (TPS) for the five caching
// schemes, with two proxies (6a) and eight proxies (6b), file sizes
// 8k/16k/32k/64k.
//
// Paper shape: all cooperative schemes beat AC; the redundancy-controlled
// schemes (CCWR/MTACC) beat BCC when the working set exceeds a single
// cache (up to ~35 % in the paper); HYBCC tracks the best scheme per file
// size; gaps are larger with fewer proxies (less aggregate memory).
#include <benchmark/benchmark.h>

#include "cache/coop_cache.hpp"
#include "common/table.hpp"
#include "common/zipf.hpp"
#include "datacenter/clients.hpp"
#include "datacenter/webfarm.hpp"

namespace {

using namespace dcs;

constexpr std::size_t kWorkingSetBytes = 12u << 20;  // 12 MB
constexpr std::size_t kCachePerNode = 4u << 20;      // 4 MB
constexpr std::size_t kRequests = 4000;
constexpr double kAlpha = 0.75;

const std::vector<cache::Scheme> kSchemes = {
    cache::Scheme::kAC, cache::Scheme::kBCC, cache::Scheme::kCCWR,
    cache::Scheme::kMTACC, cache::Scheme::kHYBCC};
const std::vector<std::size_t> kFileSizes = {8192, 16384, 32768, 65536};

struct RunResult {
  double tps;
  double hit_rate;
};

RunResult run_datacenter(cache::Scheme scheme, std::size_t file_bytes,
                         std::size_t num_proxies) {
  // Layout: [0,1] clients, [2 .. 2+P) proxies, then 2 donors, 2 backends.
  const std::size_t total_nodes = 2 + num_proxies + 2 + 2;
  sim::Engine eng;
  fabric::Fabric fab(eng, fabric::FabricParams{},
                     {.num_nodes = total_nodes, .cores_per_node = 2,
                      .mem_per_node = 64u << 20});
  verbs::Network net(fab);
  sockets::TcpNetwork tcp(fab);

  std::vector<fabric::NodeId> clients = {0, 1};
  std::vector<fabric::NodeId> proxies, donors, backends;
  for (std::size_t i = 0; i < num_proxies; ++i) {
    proxies.push_back(static_cast<fabric::NodeId>(2 + i));
  }
  donors = {static_cast<fabric::NodeId>(2 + num_proxies),
            static_cast<fabric::NodeId>(3 + num_proxies)};
  backends = {static_cast<fabric::NodeId>(4 + num_proxies),
              static_cast<fabric::NodeId>(5 + num_proxies)};

  const std::size_t num_docs = kWorkingSetBytes / file_bytes;
  datacenter::DocumentStore store(
      {.num_docs = num_docs, .doc_bytes = file_bytes});
  datacenter::BackendService backend(tcp, store, backends);
  backend.start();

  cache::CoopCacheService coop(net, backend, store, scheme, proxies, donors,
                               {.capacity_per_node = kCachePerNode});
  datacenter::WebFarm farm(tcp, proxies, coop.handler());
  farm.start();

  datacenter::ClientFarm farm_clients(tcp, clients, proxies, store,
                                      {.sessions = 4 * num_proxies});
  ZipfTrace trace(num_docs, kAlpha, kRequests, 20260705);
  eng.spawn(farm_clients.run(
      {trace.requests().begin(), trace.requests().end()}));
  eng.run();

  DCS_CHECK(farm_clients.stats().completed == kRequests);
  DCS_CHECK(farm_clients.stats().integrity_failures == 0);
  return RunResult{farm_clients.stats().tps(), coop.stats().hit_rate()};
}

void print_fig6(std::size_t num_proxies, const char* title) {
  std::vector<std::string> header = {"file size"};
  for (const auto s : kSchemes) header.push_back(cache::to_string(s));
  Table tps_table(header);
  Table hit_table(header);
  for (const std::size_t size : kFileSizes) {
    std::vector<double> tps_row, hit_row;
    for (const auto s : kSchemes) {
      const auto r = run_datacenter(s, size, num_proxies);
      tps_row.push_back(r.tps);
      hit_row.push_back(100.0 * r.hit_rate);
    }
    tps_table.add_row(std::to_string(size / 1024) + "k", tps_row, 0);
    hit_table.add_row(std::to_string(size / 1024) + "k", hit_row, 1);
  }
  tps_table.print(title);
  hit_table.print("  └─ corresponding cache hit rates (%)");
}

void BM_CoopCache(benchmark::State& state) {
  const auto scheme = kSchemes[static_cast<std::size_t>(state.range(0))];
  const auto size = static_cast<std::size_t>(state.range(1));
  const auto proxies = static_cast<std::size_t>(state.range(2));
  for (auto _ : state) {
    const auto r = run_datacenter(scheme, size, proxies);
    // Report virtual time per request.
    state.SetIterationTime(1.0 / r.tps * kRequests * 1e-3);
    state.counters["TPS"] = r.tps;
  }
  state.SetLabel(std::string(cache::to_string(scheme)) + "/" +
                 std::to_string(size / 1024) + "k/" +
                 std::to_string(proxies) + "proxies");
}
BENCHMARK(BM_CoopCache)
    ->ArgsProduct({{0, 2}, {16384, 65536}, {2, 8}})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_fig6(2,
             "Figure 6a — data-center throughput (TPS), two proxy nodes "
             "(paper: advanced schemes up to ~35 % over BCC)");
  print_fig6(8, "Figure 6b — data-center throughput (TPS), eight proxy nodes");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
