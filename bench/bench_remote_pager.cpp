// E14 — §6 / [18]: remote-memory file-cache extension.
//
// Miss-penalty hierarchy and the effect of donated remote memory on a
// working set that exceeds the local page cache: remote hits replace
// ~5 ms disk accesses with ~10 us RDMA reads.
#include <benchmark/benchmark.h>

#include "cache/remote_pager.hpp"
#include "common/table.hpp"
#include "common/zipf.hpp"

namespace {

using namespace dcs;
using cache::RemoteBlockCache;
using cache::RemotePagerConfig;

void print_penalty_table() {
  sim::Engine eng;
  fabric::Fabric fab(eng, fabric::FabricParams{},
                     {.num_nodes = 3, .mem_per_node = 16u << 20});
  verbs::Network net(fab);
  RemoteBlockCache pager(net, 0, {1, 2},
                         {.block_bytes = 16384, .local_capacity = 64 * 1024});
  SimNanos disk_t = 0, remote_t = 0, local_t = 0;
  eng.spawn([](RemoteBlockCache& c, sim::Engine& e, SimNanos& d, SimNanos& r,
               SimNanos& l) -> sim::Task<void> {
    auto t0 = e.now();
    (void)co_await c.read_block(100);  // cold: disk
    d = e.now() - t0;
    // Fill local beyond capacity so block 100 lands in remote memory.
    for (std::uint64_t b = 0; b < 6; ++b) (void)co_await c.read_block(b);
    t0 = e.now();
    (void)co_await c.read_block(100);  // remote victim store
    r = e.now() - t0;
    t0 = e.now();
    (void)co_await c.read_block(100);  // now local again
    l = e.now() - t0;
  }(pager, eng, disk_t, remote_t, local_t));
  eng.run();

  Table table({"tier", "16 KB block read", "vs disk"});
  table.add_row({"local page cache", Table::fmt(to_micros(local_t), 2) + " us",
                 "-"});
  table.add_row({"remote memory (RDMA)",
                 Table::fmt(to_micros(remote_t), 2) + " us",
                 Table::fmt(to_millis(disk_t) * 1000 / to_micros(remote_t),
                            0) + "x faster"});
  table.add_row({"disk", Table::fmt(to_millis(disk_t), 2) + " ms", "1x"});
  table.print("Remote-memory file cache — miss-penalty hierarchy (§6/[18])");
}

struct SweepResult {
  double mean_read_us;
  double disk_fraction;
};

SweepResult run_sweep(bool with_remote_memory) {
  sim::Engine eng;
  fabric::Fabric fab(eng, fabric::FabricParams{},
                     {.num_nodes = 3, .mem_per_node = 32u << 20});
  verbs::Network net(fab);
  RemotePagerConfig config;
  config.block_bytes = 16384;
  config.local_capacity = 512 * 1024;  // 32 blocks
  config.remote_capacity_per_server =
      with_remote_memory ? (4u << 20) : config.block_bytes;  // ~0 if off
  RemoteBlockCache pager(net, 0, {1, 2}, config);

  double mean_us = 0;
  eng.spawn([](RemoteBlockCache& c, sim::Engine& e, double& out)
                -> sim::Task<void> {
    // Zipf(0.8) over a 200-block (3.2 MB) working set: 6x local capacity.
    Rng rng(99);
    ZipfSampler zipf(200, 0.8);
    const auto t0 = e.now();
    constexpr int kReads = 1500;
    for (int i = 0; i < kReads; ++i) {
      (void)co_await c.read_block(zipf.sample(rng));
    }
    out = to_micros(e.now() - t0) / kReads;
  }(pager, eng, mean_us));
  eng.run();
  return SweepResult{
      mean_us, static_cast<double>(pager.stats().disk_reads) /
                   static_cast<double>(pager.stats().total())};
}

void print_sweep_table() {
  Table table({"configuration", "mean block read (us)", "disk-read fraction"});
  const auto off = run_sweep(false);
  const auto on = run_sweep(true);
  table.add_row({"local cache only", Table::fmt(off.mean_read_us, 0),
                 Table::fmt(100 * off.disk_fraction, 1) + " %"});
  table.add_row({"+ remote memory (2 donors)", Table::fmt(on.mean_read_us, 0),
                 Table::fmt(100 * on.disk_fraction, 1) + " %"});
  table.print(
      "Zipf(0.8) over a working set 6x the local cache — donated remote "
      "memory absorbs the capacity misses");
}

void BM_PagerRead(benchmark::State& state) {
  const bool remote = state.range(0) != 0;
  for (auto _ : state) {
    const auto r = run_sweep(remote);
    state.counters["disk_fraction"] = r.disk_fraction;
    state.SetIterationTime(r.mean_read_us * 1e-6 * 1500);
  }
  state.SetLabel(remote ? "with-remote-memory" : "local-only");
}
BENCHMARK(BM_PagerRead)->Arg(0)->Arg(1)->UseManualTime()->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_penalty_table();
  print_sweep_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
