// Datacenter-scale sharded benchmark (docs/SCALING.md).
//
// Partitions a 1024-node datacenter across `--partitions` engine shards and
// runs them on `--shards` worker threads (sim/shard.hpp).  Each partition
// hosts a real slice of the stack — a Fabric cluster with two-core nodes, a
// verbs network, a DDSS substrate and an N-CoSED lock manager — and a set
// of client strands issuing Zipf-distributed requests over the GLOBAL node
// space.  A request whose node lives in another partition crosses the shard
// boundary as a timestamped message; the remote side serves it (host CPU
// slices + a DDSS get) and replies, so the benchmark exercises the
// conservative-PDES merge under realistic request/response traffic with a
// hot partition (Zipf mass concentrates on low node ranks).
//
// The point of the exercise is the determinism oracle: the merged dispatch
// fingerprint printed at the end must be byte-identical for every
// `--shards` value.  `--shards=1` is the sequential oracle; any divergence
// at higher worker counts is a merge bug, not noise.
//
// `--bench-wall-json FILE` writes dcs-bench-wall-v1 telemetry with
// LIST-valued fields: `events` is per-partition (partition order) and
// `wall_ns` is per-worker (worker order), because a sharded run has no
// single meaningful scalar for either — workers overlap in wall time and
// partitions do unequal shares of the work.  tools/bench_compare.py reduces
// the lists (sum of events, max of wall_ns) when comparing.
#include <algorithm>
#include <array>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <numeric>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "ddss/ddss.hpp"
#include "dlm/ncosed.hpp"
#include "fabric/fabric.hpp"
#include "harness.hpp"
#include "monitor/telemetry.hpp"
#include "obs/heavy.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "trace/exemplar.hpp"
#include "sim/shard.hpp"
#include "trace/flight.hpp"
#include "trace/shard_metrics.hpp"
#include "trace/trace.hpp"

namespace dcs {
namespace {

// Cross-shard message tags.
constexpr std::uint64_t kReq = 1;   // a = global node key, b = send time
constexpr std::uint64_t kResp = 2;  // a = global node key, b = original send time

constexpr std::size_t kAllocs = 8;       // DDSS allocations per partition
constexpr std::size_t kValueBytes = 64;  // payload size of every put/get

constexpr std::uint32_t kNoHotShard = ~0u;
/// A served request slower than this counts against the slow-serve budget.
constexpr SimNanos kSlowServeNs = 20000;

struct ScaleConfig {
  std::size_t nodes = 1024;
  std::uint32_t partitions = 16;
  std::uint32_t shards = 1;
  std::uint64_t seed = 1;
  std::uint32_t clients = 4;  // client strands per partition
  std::uint32_t ops = 24;     // requests per client strand
  double alpha = 0.9;         // Zipf skew over the global node space
  /// Partition whose serve path gets extra CPU (an injected SLO breach);
  /// kNoHotShard disables the injection.
  std::uint32_t hot_shard = kNoHotShard;
  std::uint64_t scrape_us = 25;  // telemetry scrape cadence (virtual us)
  std::uint64_t scrapes = 20;    // scrape sweeps per partition
  bool observe = false;          // --timeseries-out / --slo requested
  bool attribute = false;        // --hotset-out / --exemplars-out / --hot-keys
};

/// Everything one partition owns: a Fabric slice of the datacenter plus the
/// services running on it.  Built by the setup factory on the partition's
/// owning worker and parked there via Shard::keep_alive, so construction
/// and destruction both happen on that worker's thread (the affinity
/// contract in sim/shard.hpp).
struct PartitionHost {
  PartitionHost(sim::Engine& eng, const ScaleConfig& cfg)
      : fab(eng, fabric::FabricParams{},
            {.num_nodes = cfg.nodes / cfg.partitions,
             .cores_per_node = 2,
             .mem_per_node = 64u << 10}),
        net(fab),
        substrate(net),
        locks(net, /*home=*/0),
        zipf(cfg.nodes, cfg.alpha) {}

  fabric::Fabric fab;
  verbs::Network net;
  ddss::Ddss substrate;
  dlm::NcosedLockManager locks;
  ZipfSampler zipf;
  std::vector<ddss::Allocation> allocs;
  /// Per-partition serve-path registry: the telemetry exporter mirrors
  /// THIS registry (not the worker's thread-local one), so the exported
  /// page is a function of the partition, never of the --shards layout.
  trace::Registry serve_reg;
};

/// The telemetry page layout both sides agree on (docs/OBSERVABILITY.md):
/// serve-path throughput, the slow-serve budget counter and the serve
/// latency log-histogram.
monitor::TelemetrySchema serve_schema() {
  using monitor::MetricKind;
  return monitor::TelemetrySchema(
      std::vector<monitor::TelemetrySchema::Entry>{
          {DCS_SERIES("scale.serve.latency_ns"), MetricKind::kHistogram},
          {DCS_SERIES("scale.serve.slow"), MetricKind::kCounter},
          {DCS_SERIES("scale.serve.total"), MetricKind::kCounter}});
}

/// What one partition's health plane hands back to the main thread after
/// the run: its slice of the cluster time-series plus its alert stream.
struct PartitionDump {
  obs::TimeSeriesStore store;
  std::vector<obs::AlertEvent> alerts;
  std::uint64_t scrapes = 0;
  std::uint64_t publishes = 0;
  std::uint64_t flight_trips = 0;
  std::vector<std::string> dump_paths;
  /// Attribution slice (--hotset-out / --exemplars-out): the serve path
  /// feeds THESE sketches explicitly — never the worker's ambient hot
  /// sink — so their contents are a function of the partition alone and
  /// the merged dumps are byte-identical for every --shards value.  Only
  /// the owning partition's strands touch its slot, and worker join
  /// publishes the writes to the main thread.
  obs::HeavyHitters hot;
  trace::ExemplarStore exemplars;
  std::uint64_t serves = 0;
};

/// Per-partition observability plane: an RDMA-Sync exporter/scraper pair
/// over the partition's serve registry, a windowed time-series store and
/// an SLO engine wired into a flight recorder.  Lives on the partition's
/// owning worker (Shard::keep_alive), like PartitionHost.
struct ObsPlane {
  ObsPlane(sim::Shard& shard, PartitionHost& host, const ScaleConfig& cfg,
           const bench::HarnessOptions& opts,
           const std::vector<obs::SloRule>& extra_rules)
      : exporter(host.net, /*node=*/0, serve_schema(),
                 microseconds(cfg.scrape_us), &host.serve_reg),
        scraper(host.net, /*frontend=*/host.fab.size() > 1 ? 1 : 0),
        store({.window = microseconds(cfg.scrape_us), .retention = 64}),
        slo(store),
        flight(shard.engine(),
               trace::FlightConfig{
                   .postmortem_dir = opts.postmortem_dir,
                   .prefix = "datacenter_scale.p" +
                             std::to_string(shard.index())}) {
    scraper.attach(exporter);
    obs::SloRule burn;
    burn.name = DCS_SLO_NAME("serve-slow-burn");
    burn.kind = obs::SloKind::kBurnRate;
    burn.series = DCS_SERIES("scale.serve.slow");
    burn.total = DCS_SERIES("scale.serve.total");
    burn.threshold = 0.05;  // 5% slow-serve budget
    burn.fast_windows = 2;
    burn.slow_windows = 8;
    burn.fast_burn = 4.0;
    burn.slow_burn = 2.0;
    burn.trip_postmortem = true;  // dumps only when --postmortem-dir is set
    slo.add_rule(std::move(burn));
    for (const auto& rule : extra_rules) slo.add_rule(rule);
    slo.set_flight(&flight);
  }

  monitor::TelemetryExporter exporter;
  monitor::TelemetryScraper scraper;
  obs::TimeSeriesStore store;
  obs::SloEngine slo;
  trace::FlightRecorder flight;
};

// Coroutines below are free functions taking the shared host by value: a
// coroutine must never be a capturing lambda (the closure dies at the end
// of the spawning full-expression, leaving the frame with dangling
// captures).

/// Serves one remote request on the partition that owns the node: host CPU
/// slices on the keyed node, a DDSS get, then the reply crosses back.  The
/// serve path feeds the partition's serve registry (throughput, slow-serve
/// budget, latency histogram) — the series the scraped health plane
/// judges.  On the --hot-shard partition every serve burns extra CPU, an
/// injected breach the SLO burn-rate rule must catch.
sim::Task<void> serve_request(sim::Shard& shard,
                              std::shared_ptr<PartitionHost> host,
                              ScaleConfig cfg, sim::ShardMsg msg,
                              std::vector<PartitionDump>* slots) {
  const auto t0 = shard.engine().now();
  const auto local_nodes = host->fab.size();
  const auto node = static_cast<fabric::NodeId>(msg.a % local_nodes);
  co_await host->fab.node(node).execute(microseconds(1) +
                                        (msg.a % 4) * nanoseconds(500));
  if (shard.index() == cfg.hot_shard) {
    co_await host->fab.node(node).execute(microseconds(40));
  }
  const SimNanos cpu_ns = shard.engine().now() - t0;
  DCS_CHECK_MSG(!host->allocs.empty(), "request arrived before boot finished");
  std::array<std::byte, kValueBytes> buf{};
  auto client = host->substrate.client(node);
  co_await client.get(host->allocs[msg.a % host->allocs.size()], buf);
  const SimNanos served_in = shard.engine().now() - t0;
  host->serve_reg.counter("scale.serve.total").add(1);
  if (served_in > kSlowServeNs) host->serve_reg.counter("scale.serve.slow").add(1);
  host->serve_reg.histogram("scale.serve.latency_ns")
      .record(static_cast<std::uint64_t>(served_in));
  if (cfg.attribute) {
    PartitionDump& dump = (*slots)[shard.index()];
    dump.hot.record_hot("scale.serve.node", msg.a, 1);
    dump.hot.record_hot("scale.serve.object", msg.a % host->allocs.size(), 1);
    // Request ids are globally unique and deterministic: serves within a
    // partition execute in virtual-time order regardless of --shards, so
    // the per-partition sequence number is stable.
    const std::uint64_t rid =
        (std::uint64_t{shard.index() + 1} << 32) | ++dump.serves;
    std::array<SimNanos, trace::kCostCategories> split{};
    split[static_cast<std::size_t>(trace::Cost::kHostCpu) - 1] = cpu_ns;
    split[static_cast<std::size_t>(trace::Cost::kWire) - 1] =
        served_in - cpu_ns;
    dump.exemplars.record(shard.index(), "scale.serve.latency_ns", served_in,
                          rid, split);
  }
  shard.send(msg.src, kResp, msg.a, msg.b);
}

/// The health-plane strand: periodic RDMA-Sync sweeps of the partition's
/// telemetry page at virtual-time cadence (zero target CPU — the read is
/// one-sided), each sweep ingesting into the windowed store and
/// re-evaluating the SLO rules.  After the last sweep the partition's
/// slice of the cluster dump is parked in its result slot, keyed by
/// partition index, so the merged dump is independent of --shards.
sim::Task<void> scrape_strand(sim::Shard& shard,
                              std::shared_ptr<ObsPlane> obs, ScaleConfig cfg,
                              std::vector<PartitionDump>* slots) {
  auto& eng = shard.engine();
  const SimNanos interval = microseconds(cfg.scrape_us);
  // Offset by half a window so sweeps land strictly between the exporter's
  // periodic mirrors instead of racing them at equal timestamps.
  co_await eng.delay(interval / 2);
  // The batched scrape path: each sweep posts ONE work queue for every
  // attached page (one here — the partition exports a single registry
  // slice), so sweep cost scales with page count, not doorbell count.
  const std::vector<fabric::NodeId> targets = {0};
  for (std::uint64_t pass = 0; pass < cfg.scrapes; ++pass) {
    co_await eng.delay(interval);
    const auto snaps = co_await obs->scraper.scrape_many(targets);
    obs->store.ingest(shard.index(), obs->exporter.schema(), snaps[0]);
    obs->slo.evaluate(eng.now());
  }
  PartitionDump& slot = (*slots)[shard.index()];
  slot.store = obs->store;
  slot.alerts = obs->slo.alerts();
  slot.scrapes = obs->scraper.scrapes();
  slot.publishes = obs->exporter.publishes();
  slot.flight_trips = obs->flight.trips();
  slot.dump_paths = obs->flight.dump_paths();
}

/// One client strand: Zipf-keyed requests over the global node space.
/// Local keys run the full DDSS/DLM path inline; remote keys cross shards.
sim::Task<void> client_strand(sim::Shard& shard,
                              std::shared_ptr<PartitionHost> host,
                              ScaleConfig cfg, std::uint32_t idx) {
  auto& eng = shard.engine();
  auto& reg = trace::Registry::global();
  Rng rng(cfg.seed ^ (std::uint64_t{shard.index()} << 32) ^
          (std::uint64_t{idx} * 0x9E3779B97F4A7C15ULL));
  const auto local_nodes = host->fab.size();
  // Boot is deterministic and identical across partitions, so a fixed
  // settle delay guarantees every partition's allocations exist before the
  // first cross-shard request can arrive.
  co_await eng.delay(microseconds(50) + idx * nanoseconds(137));
  std::array<std::byte, kValueBytes> buf{};
  for (std::uint32_t op = 0; op < cfg.ops; ++op) {
    co_await eng.delay(rng.uniform(microseconds(1), microseconds(25)));
    const std::size_t key = host->zipf.sample(rng);  // global node rank
    const auto target = static_cast<std::uint32_t>(key / local_nodes);
    if (target != shard.index()) {
      shard.send(target, kReq, key, eng.now());
      reg.counter("scale.remote.req").add(1);
      continue;
    }
    const auto node = static_cast<fabric::NodeId>(key % local_nodes);
    auto client = host->substrate.client(node);
    const auto& alloc = host->allocs[key % host->allocs.size()];
    if (op % 3 == 0) {
      std::array<std::byte, kValueBytes> val{};
      val[0] = static_cast<std::byte>(op);
      co_await client.put(alloc, val);
    } else {
      co_await client.get(alloc, buf);
    }
    if (op % 8 == 0) {
      const auto lock_id = static_cast<dlm::LockId>(key % 16);
      co_await host->locks.lock(node, lock_id, dlm::LockMode::kExclusive);
      co_await host->fab.node(node).execute(microseconds(2));
      co_await host->locks.unlock(node, lock_id);
    }
    reg.counter("scale.local.ops").add(1);
  }
}

/// Boot strand: allocate the partition's DDSS working set, then launch the
/// clients.  Runs identically on every partition.
sim::Task<void> boot(sim::Shard& shard, std::shared_ptr<PartitionHost> host,
                     ScaleConfig cfg) {
  auto client = host->substrate.client(0);
  for (std::size_t i = 0; i < kAllocs; ++i) {
    host->allocs.push_back(
        co_await client.allocate(kValueBytes, ddss::Coherence::kWrite));
  }
  for (std::uint32_t c = 0; c < cfg.clients; ++c) {
    shard.engine().spawn(client_strand(shard, host, cfg, c));
  }
}

void setup_partition(sim::Shard& shard, const ScaleConfig& cfg,
                     const bench::HarnessOptions& opts,
                     const std::vector<obs::SloRule>& extra_rules,
                     std::vector<PartitionDump>* slots) {
  auto host = std::make_shared<PartitionHost>(shard.engine(), cfg);
  host->substrate.start();
  shard.set_handler([host, cfg, slots](sim::Shard& s,
                                       const sim::ShardMsg& msg) {
    auto& reg = trace::Registry::global();
    if (msg.tag == kReq) {
      reg.counter("scale.remote.served").add(1);
      s.engine().spawn(serve_request(s, host, cfg, msg, slots));
    } else {
      reg.counter("scale.remote.resp").add(1);
      reg.counter("scale.remote.rtt_total_ns").add(s.engine().now() - msg.b);
    }
  });
  shard.engine().spawn(boot(shard, host, cfg));
  shard.keep_alive(host);
  if (cfg.observe) {
    auto obs = std::make_shared<ObsPlane>(shard, *host, cfg, opts,
                                          extra_rules);
    obs->exporter.start(cfg.scrapes + 1);
    shard.engine().spawn(scrape_strand(shard, obs, cfg, slots));
    shard.keep_alive(obs);
  }
}

std::uint64_t counter_value(const char* name) {
  const auto* c = trace::Registry::global().find_counter(name);
  return c != nullptr ? c->value : 0;
}

bool parse_u64(const char* arg, const char* flag, std::uint64_t* out) {
  const std::size_t n = std::strlen(flag);
  if (std::strncmp(arg, flag, n) != 0 || arg[n] != '=') return false;
  *out = std::strtoull(arg + n + 1, nullptr, 10);
  return true;
}

int run(const ScaleConfig& cfg, const bench::HarnessOptions& opts) {
  using Clock = std::chrono::steady_clock;
  trace::Registry::global().reset();
  std::vector<obs::SloRule> extra_rules;
  if (!opts.slo_rules.empty()) {
    std::string error;
    extra_rules = obs::parse_slo_rules_file(opts.slo_rules, &error);
    if (!error.empty()) {
      std::fprintf(stderr, "datacenter_scale: %s\n", error.c_str());
      return 2;
    }
  }
  std::vector<PartitionDump> slots(cfg.partitions);
  const auto wall_start = Clock::now();
  sim::ShardedEngine sharded({.partitions = cfg.partitions,
                              .workers = cfg.shards,
                              .lookahead = fabric::FabricParams{}.link_latency});
  sharded.setup([&cfg, &opts, &extra_rules, &slots](sim::Shard& shard) {
    setup_partition(shard, cfg, opts, extra_rules, &slots);
  });
  sharded.run();
  const auto wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           wall_start)
          .count());
  trace::collect_shard_registries(sharded);

  const auto events = sharded.partition_events();
  const auto worker_wall = sharded.worker_wall_ns();
  const std::uint64_t total_events = sharded.events_dispatched();
  const std::uint64_t busiest_worker_ns =
      *std::max_element(worker_wall.begin(), worker_wall.end());
  const double secs = static_cast<double>(wall_ns) / 1e9;
  const double eps = secs > 0 ? static_cast<double>(total_events) / secs : 0;

  const std::uint64_t resp = counter_value("scale.remote.resp");
  const std::uint64_t rtt_total = counter_value("scale.remote.rtt_total_ns");
  std::printf("datacenter_scale: nodes=%zu partitions=%u shards=%u seed=%" PRIu64
              "\n",
              cfg.nodes, cfg.partitions, sharded.workers(), cfg.seed);
  std::printf("  fingerprint      0x%016" PRIx64 "   <- identical for every --shards\n",
              sharded.merged_fingerprint());
  std::printf("  events           %" PRIu64 " (%" PRIu64
              " cross msgs, %" PRIu64 " windows)\n",
              total_events, sharded.cross_messages(), sharded.windows());
  std::printf("  virtual time     %.3f ms\n",
              static_cast<double>(sharded.now()) / 1e6);
  std::printf("  local ops        %" PRIu64 "\n", counter_value("scale.local.ops"));
  std::printf("  remote req/resp  %" PRIu64 "/%" PRIu64 " (mean rtt %.2f us)\n",
              counter_value("scale.remote.req"), resp,
              resp > 0 ? static_cast<double>(rtt_total) / resp / 1e3 : 0.0);
  std::printf("  wall             %.1f ms total, %.1f ms busiest worker, "
              "%.0f events/sec\n",
              static_cast<double>(wall_ns) / 1e6,
              static_cast<double>(busiest_worker_ns) / 1e6, eps);

  if (cfg.observe) {
    // Merge the per-partition health planes in partition order.  Node sets
    // are disjoint (each partition ingests under its own index), so the
    // merged dump — like the fingerprint — is byte-identical for every
    // --shards value.
    obs::TimeSeriesStore merged(
        {.window = microseconds(cfg.scrape_us), .retention = 64});
    obs::SloEngine merged_slo(merged);
    std::uint64_t scrapes = 0, trips = 0;
    std::vector<std::string> dumps;
    for (const PartitionDump& slot : slots) {
      merged.merge(slot.store);
      merged_slo.absorb(slot.alerts);
      scrapes += slot.scrapes;
      trips += slot.flight_trips;
      dumps.insert(dumps.end(), slot.dump_paths.begin(),
                   slot.dump_paths.end());
    }
    std::map<std::pair<std::string, std::uint32_t>, bool> final_state;
    for (const auto& a : merged_slo.alerts()) {
      final_state[{a.rule, a.node}] = a.firing;
    }
    std::size_t firing = 0;
    for (const auto& [key, last] : final_state) {
      (void)key;
      if (last) ++firing;
    }
    std::printf("  health plane     %" PRIu64 " scrapes, %zu alert "
                "transition(s), %zu firing at end, %" PRIu64
                " flight trip(s)\n",
                scrapes, merged_slo.alerts().size(), firing, trips);
    for (const auto& path : dumps) std::printf("  postmortem: %s\n", path.c_str());
    if (!merged_slo.alerts().empty()) {
      std::ostringstream stream;
      obs::write_alert_stream(stream, merged_slo.alerts());
      std::fputs(stream.str().c_str(), stdout);
    }
    if (!opts.timeseries_out.empty()) {
      std::ofstream os(opts.timeseries_out);
      if (!os) {
        std::fprintf(stderr, "bench: cannot open %s\n",
                     opts.timeseries_out.c_str());
        return 1;
      }
      obs::write_timeseries_json(os, merged, merged_slo.alerts());
      std::fprintf(stderr, "bench: %zu series -> %s\n", merged.all().size(),
                   opts.timeseries_out.c_str());
    }
  }

  if (cfg.attribute) {
    // Merge the per-partition attribution slices in partition order.  The
    // space-saving merge and the exemplar argmax are both
    // grouping-independent, so — like the fingerprint — the dumps are
    // byte-identical for every --shards value.
    obs::HeavyHitters hot;
    trace::ExemplarStore exemplars;
    std::uint64_t serves = 0;
    for (const PartitionDump& slot : slots) {
      hot.merge(slot.hot);
      exemplars.merge(slot.exemplars);
      serves += slot.serves;
    }
    std::printf("  attribution      %" PRIu64 " serve(s) attributed\n", serves);
    if (opts.hot_keys > 0) {
      for (const char* domain : {"scale.serve.node", "scale.serve.object"}) {
        const auto entries = hot.top(domain, opts.hot_keys);
        std::uint64_t total = 0;
        for (const auto& e : entries) total += e.count;
        std::printf("  hot %s (top %zu of %" PRIu64 "):\n", domain,
                    entries.size(), total);
        for (const auto& e : entries) {
          std::printf("    key=%" PRIu64 " count=%" PRIu64 " error=%" PRIu64
                      "\n",
                      e.key, e.count, e.error);
        }
      }
    }
    if (!opts.hotset_out.empty()) {
      std::ofstream os(opts.hotset_out);
      if (!os) {
        std::fprintf(stderr, "bench: cannot open %s\n",
                     opts.hotset_out.c_str());
        return 1;
      }
      obs::write_hotset_json(os, hot);
      std::fprintf(stderr, "bench: hotset -> %s\n", opts.hotset_out.c_str());
    }
    if (!opts.exemplars_out.empty()) {
      std::ofstream os(opts.exemplars_out);
      if (!os) {
        std::fprintf(stderr, "bench: cannot open %s\n",
                     opts.exemplars_out.c_str());
        return 1;
      }
      trace::write_exemplar_json(os, exemplars);
      std::fprintf(stderr, "bench: exemplars -> %s\n",
                   opts.exemplars_out.c_str());
    }
  }

  if (!opts.wall_json.empty()) {
    std::ofstream os(opts.wall_json);
    if (!os) {
      std::fprintf(stderr, "bench: cannot open %s\n", opts.wall_json.c_str());
      return 1;
    }
    // dcs-bench-wall-v1 with list-valued events (per partition) and
    // wall_ns (per worker); consumers reduce with sum / max respectively.
    char fp[32];
    std::snprintf(fp, sizeof fp, "0x%016" PRIx64, sharded.merged_fingerprint());
    os << "{\n  \"schema\": \"dcs-bench-wall-v1\",\n"
       << "  \"bench\": \"datacenter_scale\",\n  \"scenarios\": {\n"
       << "    \"zipf/nodes=" << cfg.nodes << "\": {\n"
       << "      \"virtual_ns\": " << sharded.now() << ",\n"
       << "      \"fingerprint\": \"" << fp << "\",\n"
       << "      \"partitions\": " << cfg.partitions << ",\n"
       << "      \"shards\": " << sharded.workers() << ",\n"
       << "      \"cross_messages\": " << sharded.cross_messages() << ",\n"
       << "      \"events\": [";
    for (std::size_t i = 0; i < events.size(); ++i) {
      os << (i ? ", " : "") << events[i];
    }
    os << "],\n      \"wall_ns\": [";
    for (std::size_t i = 0; i < worker_wall.size(); ++i) {
      os << (i ? ", " : "") << worker_wall[i];
    }
    char eps_s[64], npe_s[64];
    std::snprintf(eps_s, sizeof eps_s, "%.3f", eps);
    std::snprintf(npe_s, sizeof npe_s, "%.3f",
                  total_events > 0
                      ? static_cast<double>(wall_ns) / total_events
                      : 0.0);
    os << "],\n      \"events_per_sec\": " << eps_s << ",\n"
       << "      \"ns_per_event\": " << npe_s << "\n    }\n  }\n}\n";
    std::fprintf(stderr, "bench: wall telemetry -> %s\n",
                 opts.wall_json.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace dcs

int main(int argc, char** argv) {
  auto opts = dcs::bench::extract_harness_flags(argc, argv);
  dcs::ScaleConfig cfg;
  std::uint64_t v = 0;
  for (int i = 1; i < argc; ++i) {
    if (dcs::parse_u64(argv[i], "--nodes", &v)) {
      cfg.nodes = static_cast<std::size_t>(v);
    } else if (dcs::parse_u64(argv[i], "--partitions", &v)) {
      cfg.partitions = static_cast<std::uint32_t>(v);
    } else if (dcs::parse_u64(argv[i], "--shards", &v)) {
      cfg.shards = static_cast<std::uint32_t>(v);
    } else if (dcs::parse_u64(argv[i], "--seed", &v)) {
      cfg.seed = v;
    } else if (dcs::parse_u64(argv[i], "--clients", &v)) {
      cfg.clients = static_cast<std::uint32_t>(v);
    } else if (dcs::parse_u64(argv[i], "--ops", &v)) {
      cfg.ops = static_cast<std::uint32_t>(v);
    } else if (dcs::parse_u64(argv[i], "--hot-shard", &v)) {
      cfg.hot_shard = static_cast<std::uint32_t>(v);
    } else if (dcs::parse_u64(argv[i], "--scrape-us", &v)) {
      cfg.scrape_us = v;
    } else if (dcs::parse_u64(argv[i], "--scrapes", &v)) {
      cfg.scrapes = v;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--nodes=N] [--partitions=P] [--shards=W] "
                   "[--seed=S] [--clients=C] [--ops=K] [--hot-shard=P] "
                   "[--scrape-us=U] [--scrapes=K] [--bench-wall-json FILE] "
                   "[--timeseries-out FILE] [--slo FILE] "
                   "[--postmortem-dir DIR] [--hotset-out FILE] "
                   "[--exemplars-out FILE] [--hot-keys N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (cfg.partitions == 0 || cfg.nodes % cfg.partitions != 0) {
    std::fprintf(stderr,
                 "datacenter_scale: --nodes must be a positive multiple of "
                 "--partitions\n");
    return 2;
  }
  if (cfg.hot_shard != dcs::kNoHotShard && cfg.hot_shard >= cfg.partitions) {
    std::fprintf(stderr, "datacenter_scale: --hot-shard out of range\n");
    return 2;
  }
  cfg.observe = !opts.timeseries_out.empty() || !opts.slo_rules.empty();
  cfg.attribute = opts.attribution_mode();
  return dcs::run(cfg, opts);
}
