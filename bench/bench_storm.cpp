// E2 — Figure 3b: STORM vs STORM-DDSS query execution time vs record count.
//
// Paper shape: the DDSS control plane wins everywhere (~19 % reported);
// both curves grow with record count.
#include <benchmark/benchmark.h>

#include "common/table.hpp"
#include "storm/storm.hpp"

namespace {

using namespace dcs;

const std::vector<std::uint64_t> kRecordCounts = {1000, 10000, 100000,
                                                  1000000};

double query_time_ms(storm::ControlPlane plane, std::uint64_t records) {
  sim::Engine eng;
  fabric::Fabric fab(eng, fabric::FabricParams{},
                     {.num_nodes = 5, .cores_per_node = 2});
  verbs::Network net(fab);
  sockets::TcpNetwork tcp(fab);
  storm::StormCluster cluster(net, tcp, plane, 0, 1, {2, 3, 4});
  eng.spawn(cluster.start());
  eng.run();
  storm::QueryResult result;
  eng.spawn([](storm::StormCluster& c, std::uint64_t n,
               storm::QueryResult& out) -> sim::Task<void> {
    out = co_await c.run_query(n);
  }(cluster, records, result));
  eng.run();
  return to_millis(result.elapsed);
}

void print_fig3b() {
  Table table({"# records", "STORM (ms)", "STORM-DDSS (ms)", "improvement"});
  for (const auto records : kRecordCounts) {
    const double trad = query_time_ms(storm::ControlPlane::kSockets, records);
    const double ddss = query_time_ms(storm::ControlPlane::kDdss, records);
    const double improvement = 100.0 * (1.0 - ddss / trad);
    table.add_row({std::to_string(records), Table::fmt(trad, 2),
                   Table::fmt(ddss, 2), Table::fmt(improvement, 1) + " %"});
  }
  table.print(
      "Figure 3b — STORM query execution time vs record count "
      "(paper: ~19 % improvement with DDSS)");
}

void BM_StormQuery(benchmark::State& state) {
  const auto plane = state.range(0) == 0 ? storm::ControlPlane::kSockets
                                         : storm::ControlPlane::kDdss;
  const auto records = static_cast<std::uint64_t>(state.range(1));
  for (auto _ : state) {
    state.SetIterationTime(query_time_ms(plane, records) * 1e-3);
  }
  state.SetLabel(std::string(storm::to_string(plane)) + "/" +
                 std::to_string(records));
}
BENCHMARK(BM_StormQuery)
    ->ArgsProduct({{0, 1}, {1000, 100000}})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_fig3b();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
