// E10 — Section 3: SDP family throughput (buffered-copy SDP vs synchronous
// zero-copy ZSDP vs asynchronous zero-copy AZ-SDP).
//
// Paper shape ([3]): buffered copies win for small messages (registration
// and rendezvous overheads dominate zero-copy); zero-copy wins large;
// AZ-SDP's overlapped transfers beat blocking ZSDP throughout, approaching
// the claimed ~2x at intermediate sizes.
#include <benchmark/benchmark.h>

#include "common/table.hpp"
#include "datacenter/backend.hpp"
#include "harness.hpp"
#include "sockets/sdp.hpp"
#include "trace/observe.hpp"

namespace {

using namespace dcs;
using sockets::SdpMode;
using sockets::SdpStream;

double throughput_mbps(SdpMode mode, std::size_t msg_bytes, int count) {
  sim::Engine eng;
  fabric::Fabric fab(eng, fabric::FabricParams{}, {.num_nodes = 2});
  verbs::Network net(fab);
  SdpStream stream(net, 0, 1, mode);
  eng.spawn([](SdpStream& s, std::size_t m, int n) -> sim::Task<void> {
    for (int i = 0; i < n; ++i) {
      co_await s.send(std::vector<std::byte>(m));
    }
    co_await s.flush();
  }(stream, msg_bytes, count));
  eng.spawn([](SdpStream& s, int n) -> sim::Task<void> {
    for (int i = 0; i < n; ++i) (void)co_await s.recv();
  }(stream, count));
  eng.run();
  return static_cast<double>(msg_bytes) * count / to_secs(eng.now()) / 1e6;
}

const std::vector<std::size_t> kSizes = {1024,  4096,   16384,
                                         65536, 131072, 262144};

void print_table() {
  Table table({"msg size", "SDP (MB/s)", "ZSDP (MB/s)", "AZ-SDP (MB/s)",
               "AZ vs Z"});
  for (const std::size_t size : kSizes) {
    const int count = size >= 65536 ? 40 : 200;
    const double sdp = throughput_mbps(SdpMode::kBufferedCopy, size, count);
    const double zsdp = throughput_mbps(SdpMode::kZeroCopy, size, count);
    const double az = throughput_mbps(SdpMode::kAsyncZeroCopy, size, count);
    table.add_row({std::to_string(size / 1024) + "K", Table::fmt(sdp, 1),
                   Table::fmt(zsdp, 1), Table::fmt(az, 1),
                   Table::fmt(az / zsdp, 2) + "x"});
  }
  table.print(
      "Section 3 — SDP / ZSDP / AZ-SDP stream throughput "
      "(paper [3]: AZ-SDP up to ~2x over blocking zero-copy)");
}

// [5] "SDP over InfiniBand in clusters: is it beneficial?" — the same
// question at data-center level: proxies fetch documents from the backend
// tier over host-TCP vs the SDP-style verbs transport.
void print_datacenter_table() {
  Table table({"tier transport", "fetch latency (us)",
               "backend comm CPU/fetch (us)"});
  for (const auto transport : {datacenter::BackendTransport::kTcp,
                               datacenter::BackendTransport::kSdp}) {
    sim::Engine eng;
    fabric::Fabric fab(eng, fabric::FabricParams{},
                       {.num_nodes = 4, .cores_per_node = 2});
    verbs::Network net(fab);
    sockets::TcpNetwork tcp(fab);
    datacenter::DocumentStore store({.num_docs = 64, .doc_bytes = 16384});
    datacenter::BackendService backend(tcp, net, store, {3},
                                       {.transport = transport});
    backend.start();
    constexpr int kFetches = 40;
    eng.spawn([](datacenter::BackendService& b) -> sim::Task<void> {
      for (datacenter::DocId d = 0; d < kFetches; ++d) {
        (void)co_await b.fetch(1, d);
      }
    }(backend));
    eng.run();
    // Generation work is transport-independent: subtract it to isolate the
    // communication CPU.
    const double gen_us = 150.0 + 16384.0 / 0.4 / 1000.0;
    const double cpu_us =
        to_micros(fab.node(3).busy_ns()) / kFetches - gen_us;
    table.add_row(
        {transport == datacenter::BackendTransport::kTcp ? "host TCP"
                                                         : "SDP (verbs)",
         Table::fmt(to_micros(eng.now()) / kFetches, 1),
         Table::fmt(cpu_us, 1)});
  }
  table.print(
      "[5] data-center tier transport — per-fetch latency and backend "
      "communication CPU (16 KB documents)");
}

void BM_Sdp(benchmark::State& state) {
  const auto mode = static_cast<SdpMode>(state.range(0));
  const auto size = static_cast<std::size_t>(state.range(1));
  const int count = 50;
  for (auto _ : state) {
    const double mbps = throughput_mbps(mode, size, count);
    state.counters["MB_per_s"] = mbps;
    state.SetIterationTime(static_cast<double>(size) * count / (mbps * 1e6));
  }
  state.SetLabel(std::string(to_string(mode)) + "/" +
                 std::to_string(size / 1024) + "K");
}
BENCHMARK(BM_Sdp)
    ->ArgsProduct({{0, 1, 2}, {4096, 262144}})
    ->UseManualTime()
    ->Iterations(1);

// Observed mode (`--trace-out` / `--metrics-out`): one deterministic
// engine streaming a fixed workload through all three SDP modes, so the
// emitted trace shows sends, receives and stall spans side by side.  Two
// invocations produce byte-identical files (see docs/OBSERVABILITY.md).
int run_observed(const trace::ObserveOptions& opts) {
  sim::Engine eng;
  trace::ObservedRun observed(eng, opts);
  fabric::Fabric fab(eng, fabric::FabricParams{}, {.num_nodes = 2});
  verbs::Network net(fab);
  for (const auto mode :
       {SdpMode::kBufferedCopy, SdpMode::kZeroCopy, SdpMode::kAsyncZeroCopy}) {
    SdpStream stream(net, 0, 1, mode);
    constexpr int kMsgs = 8;
    constexpr std::size_t kBytes = 32768;
    eng.spawn([](SdpStream& s) -> sim::Task<void> {
      for (int i = 0; i < kMsgs; ++i) {
        co_await s.send(std::vector<std::byte>(kBytes));
      }
      co_await s.flush();
    }(stream));
    eng.spawn([](SdpStream& s) -> sim::Task<void> {
      for (int i = 0; i < kMsgs; ++i) (void)co_await s.recv();
    }(stream));
    eng.run();
  }
  return 0;
}

// Harnessed scenarios (docs/BENCHMARKS.md): one fixed stream per SDP mode,
// each message send wrapped in a trace::Request so credit stalls and NIC
// time are attributed per message.
int run_harness(const bench::HarnessOptions& opts) {
  bench::Harness h("sdp", opts);
  for (const auto mode :
       {SdpMode::kBufferedCopy, SdpMode::kZeroCopy, SdpMode::kAsyncZeroCopy}) {
    h.run(std::string("stream/") + to_string(mode),
          [mode](bench::Scenario& s) {
            auto& eng = s.engine();
            fabric::Fabric fab(eng, fabric::FabricParams{}, {.num_nodes = 2});
            verbs::Network net(fab);
            SdpStream stream(net, 0, 1, mode);
            constexpr int kMsgs = 16;
            constexpr std::size_t kBytes = 32768;
            eng.spawn([](sim::Engine& e, SdpStream& st,
                         bench::Scenario& out) -> sim::Task<void> {
              for (int i = 0; i < kMsgs; ++i) {
                const auto t0 = e.now();
                {
                  trace::Request req("sdp.send", 0,
                                     static_cast<std::uint64_t>(i));
                  co_await st.send(std::vector<std::byte>(kBytes));
                }
                out.latency_ns(static_cast<double>(e.now() - t0));
              }
              co_await st.flush();
            }(eng, stream, s));
            eng.spawn([](SdpStream& st) -> sim::Task<void> {
              for (int i = 0; i < kMsgs; ++i) (void)co_await st.recv();
            }(stream));
            eng.run();
            s.metric("msgs", kMsgs);
            s.metric("msg_bytes", kBytes);
            s.metric("MB_per_s", static_cast<double>(kBytes) * kMsgs /
                                     to_secs(eng.now()) / 1e6);
          });
  }
  return h.finish();
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = bench::extract_harness_flags(argc, argv);
  if (flags.harness_mode()) return run_harness(flags);
  if (flags.observe_mode()) return run_observed(flags.observe("sdp"));
  print_table();
  print_datacenter_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
