// Unified benchmark telemetry harness (docs/BENCHMARKS.md).
//
// A harnessed bench declares named scenarios; each runs under a fresh
// engine with the global metrics registry reset and a tracer installed, so
// the harness can snapshot everything a perf trajectory needs — scenario
// metrics, latency percentiles, the registry, and the critical-path
// attribution — into one canonical `BENCH_<name>.json`.  Output is
// byte-deterministic for same-seed runs: scenarios appear in run order,
// maps in sorted order, and every number prints with fixed precision.
//
// `--bench-wall-json` additionally writes a sibling `BENCH_<name>.wall.json`
// (schema `dcs-bench-wall-v1`) with wall-clock events/sec and ns/event per
// scenario.  Wall time varies run to run and machine to machine, so it is
// kept strictly out of the byte-stable dcs-bench-v1 files and out of the
// CI byte-identity assertion (docs/BENCHMARKS.md).
//
// Usage (see bench_sdp.cpp):
//
//   int main(int argc, char** argv) {
//     auto opts = bench::extract_harness_flags(argc, argv);
//     if (opts.harness_mode()) {
//       bench::Harness h("sdp", opts);
//       h.run("buffered_copy/64K", [](bench::Scenario& s) { ... });
//       return h.finish();
//     }
//     if (opts.observe_mode()) { ... trace::ObservedRun path ... }
//     ... normal google-benchmark path ...
//   }
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "obs/heavy.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "sim/engine.hpp"
#include "trace/critical_path.hpp"
#include "trace/exemplar.hpp"
#include "trace/observe.hpp"
#include "trace/trace.hpp"

namespace dcs::bench {

/// Every observability/telemetry flag the repo's binaries accept, parsed
/// in exactly one place.  Empty string = not requested.
///
/// Harness flags (multi-scenario dcs-bench-v1 telemetry):
///   --bench-json FILE       canonical BENCH_<name>.json
///   --bench-wall-json FILE  wall-clock BENCH_<name>.wall.json
///   --critical-path FILE    plain-text attribution report
///   --timeseries-out FILE   dcs-timeseries-v1 cluster time-series dump
///   --slo FILE              SLO rule file evaluated against the dump
///   --exemplars-out FILE    dcs-exemplar-v1 tail-exemplar dump
///   --hotset-out FILE       dcs-hotset-v1 hot-key sketch dump
///   --hot-keys N            print the top-N hot-key table per domain
/// Single-run observation flags (trace::ObservedRun):
///   --trace-out FILE        Chrome trace_event JSON
///   --metrics-out FILE      metrics registry dump
///   --postmortem-dir DIR    arm a flight recorder dumping here
///
/// `--postmortem-dir` applies to both modes: in harness mode every
/// scenario runs with an armed trace::FlightRecorder, in observed mode the
/// whole run does.
struct HarnessOptions {
  std::string bench_json;     // canonical BENCH_<name>.json
  std::string wall_json;      // wall-clock BENCH_<name>.wall.json
  std::string critical_path;  // plain-text attribution report
  std::string timeseries_out; // dcs-timeseries-v1 dump (obs/timeseries.hpp)
  std::string slo_rules;      // SLO rule file (obs/slo.hpp syntax)
  std::string exemplars_out;  // dcs-exemplar-v1 dump (trace/exemplar.hpp)
  std::string hotset_out;     // dcs-hotset-v1 dump (obs/heavy.hpp)
  std::string trace_out;      // Chrome trace_event JSON file
  std::string metrics_out;    // plain-text metrics dump file
  std::string postmortem_dir; // flight-recorder dump directory
  /// --batch N: maximum batch depth for benches that sweep the batched
  /// verbs data path (0 = the bench's default sweep).  Benches record the
  /// depth per scenario via Scenario::batch_depth; it lands as a "batch"
  /// field in the wall JSON so batch depth is a first-class bench axis.
  std::size_t batch = 0;
  /// --hot-keys N: print the top-N entries of every DCS_HOT domain after
  /// the run (0 = no table).  Independent of --hotset-out.
  std::size_t hot_keys = 0;

  /// Multi-scenario telemetry requested (run the bench::Harness path).
  bool harness_mode() const {
    return !bench_json.empty() || !wall_json.empty() ||
           !critical_path.empty() || !timeseries_out.empty() ||
           attribution_mode();
  }
  /// Hot-key / exemplar attribution requested (a HeavyHitters sink is
  /// installed around every scenario and exemplars are retained).
  bool attribution_mode() const {
    return !exemplars_out.empty() || !hotset_out.empty() || hot_keys > 0;
  }
  /// Single-run observation requested (run the trace::ObservedRun path).
  bool observe_mode() const {
    return !trace_out.empty() || !metrics_out.empty() ||
           !postmortem_dir.empty();
  }
  /// The single-run observation subset, for trace::ObservedRun.  The
  /// critical-path/bench-json sinks ride along so a binary with no
  /// harness path (the `dcs` CLI) still honors them.
  trace::ObserveOptions observe(const std::string& bench_name) const {
    return {.trace_out = trace_out,
            .metrics_out = metrics_out,
            .critical_path_out = critical_path,
            .bench_json = bench_json,
            .postmortem_dir = postmortem_dir,
            .bench_name = bench_name};
  }
};

/// Removes the flags above from argv (shifting later arguments down and
/// decrementing argc) and returns the extracted values.  Call before
/// handing argv to another parser such as benchmark::Initialize.
HarnessOptions extract_harness_flags(int& argc, char** argv);

/// Batch depths a bench sweeps for `--batch max` (powers of two up to and
/// including `max`); `max == 0` yields the default sweep {1, 2, 4, 8}.
std::vector<std::size_t> batch_sweep(std::size_t max);

/// One scenario run: the engine to drive plus sinks for results.
class Scenario {
 public:
  Scenario(sim::Engine& eng) : eng_(eng) {}
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  sim::Engine& engine() { return eng_; }
  /// Records a scalar result (throughput, ratio, error, ...).
  void metric(const std::string& name, double value) {
    metrics_[name] = value;
  }
  /// Records one end-to-end latency sample in nanoseconds.
  void latency_ns(double ns) { latency_.add(ns); }
  /// Tags the scenario with the verbs batch depth it ran at; written as the
  /// "batch" field of the wall JSON (0 = not a batched scenario).
  void batch_depth(std::size_t n) { batch_depth_ = n; }
  /// Tags the scenario with its workload's Zipf skew; written as the
  /// "zipf_alpha" field of the wall JSON so hot-key tables are
  /// interpretable (negative = no Zipf workload).
  void zipf_alpha(double alpha) { zipf_alpha_ = alpha; }

 private:
  friend class Harness;
  sim::Engine& eng_;
  std::map<std::string, double> metrics_;
  LatencySamples latency_;
  std::size_t batch_depth_ = 0;
  double zipf_alpha_ = -1.0;
};

/// Collects scenario snapshots and writes the canonical JSON.
class Harness {
 public:
  Harness(std::string bench, HarnessOptions opts);

  /// Runs `body` under a fresh engine, reset registry, and installed
  /// tracer, then snapshots the results.  Scenarios run in call order.
  /// When --timeseries-out / --slo is set, the scenario's final registry
  /// additionally ingests into the cluster time-series store, with the
  /// scenario ordinal standing in as the node id.
  void run(const std::string& scenario,
           const std::function<void(Scenario&)>& body);

  /// Writes the requested files.  Returns a process exit code (non-zero
  /// when a file could not be written).
  int finish();

 private:
  struct Snapshot {
    std::string name;
    SimNanos virtual_ns = 0;
    // Wall-clock telemetry (docs/BENCHMARKS.md).  Written only to the
    // `.wall.json` sibling: wall time is machine-dependent, so it must
    // never leak into the byte-stable dcs-bench-v1 output.
    std::uint64_t events = 0;    // engine events dispatched by the scenario
    double wall_ns = 0;          // host time spent inside the body
    std::size_t batch = 0;       // verbs batch depth (0 = not batched)
    double zipf_alpha = -1.0;    // workload Zipf skew (negative = none)
    std::map<std::string, double> metrics;
    // Latency percentiles (ns); count == 0 when the scenario recorded none.
    std::size_t latency_count = 0;
    double latency_mean = 0, p0 = 0, p50 = 0, p99 = 0, p100 = 0;
    std::string registry_json;       // pre-rendered registry object
    std::string critical_path_json;  // aggregate breakdown object, or empty
    std::string critical_path_report;  // plain-text report
  };

  std::string bench_;
  HarnessOptions opts_;
  std::vector<Snapshot> snapshots_;
  obs::TimeSeriesStore store_;
  /// Attribution sinks, fed across scenarios: the hot sink is installed
  /// thread-locally around each body; exemplars ingest from the tracer's
  /// per-request critical paths after each scenario.
  obs::HeavyHitters hot_;
  trace::ExemplarStore exemplars_;
};

}  // namespace dcs::bench
