// E1 — Figure 3a: DDSS put() latency per coherence model vs message size.
//
// Paper shape: Null cheapest (one RDMA write); Read/Version add a version
// bump; Write adds lock+unlock; Strict adds lock+version+unlock (most
// expensive); Delta pays a head read + slot write + head bump.  1-byte puts
// land in the tens of microseconds.
#include <benchmark/benchmark.h>

#include "common/table.hpp"
#include "ddss/ddss.hpp"
#include "harness.hpp"
#include "trace/observe.hpp"

namespace {

using namespace dcs;

const std::vector<ddss::Coherence> kModels = {
    ddss::Coherence::kNull,   ddss::Coherence::kRead,
    ddss::Coherence::kWrite,  ddss::Coherence::kStrict,
    ddss::Coherence::kVersion, ddss::Coherence::kDelta,
};

const std::vector<std::size_t> kSizes = {1, 64, 1024, 4096, 16384, 65536};

/// Mean put latency (µs) for `model` at `bytes`, writer on a non-home node.
double put_latency_us(ddss::Coherence model, std::size_t bytes) {
  sim::Engine eng;
  fabric::Fabric fab(eng, fabric::FabricParams{},
                     {.num_nodes = 2, .mem_per_node = 4u << 20});
  verbs::Network net(fab);
  ddss::Ddss substrate(net);
  substrate.start();
  double total_us = 0;
  constexpr int kIters = 20;
  eng.spawn([](ddss::Ddss& d, sim::Engine& e, ddss::Coherence m,
               std::size_t n, double& out) -> sim::Task<void> {
    auto client = d.client(0);
    auto alloc =
        co_await client.allocate(n, m, ddss::Placement::kRemote);
    std::vector<std::byte> value(n, std::byte{0x5A});
    co_await client.put(alloc, value);  // warm-up (delta ring head, etc.)
    const auto t0 = e.now();
    for (int i = 0; i < kIters; ++i) co_await client.put(alloc, value);
    out = to_micros(e.now() - t0) / kIters;
  }(substrate, eng, model, bytes, total_us));
  eng.run();
  return total_us;
}

void print_fig3a() {
  std::vector<std::string> header = {"msg size"};
  for (const auto m : kModels) header.push_back(ddss::to_string(m));
  Table table(header);
  for (const std::size_t size : kSizes) {
    std::vector<double> row;
    for (const auto m : kModels) row.push_back(put_latency_us(m, size));
    table.add_row(std::to_string(size) + " B", row, 2);
  }
  table.print(
      "Figure 3a — DDSS put() latency (us) per coherence model "
      "(paper: 1-byte ~tens of us, Strict most expensive)");
}

void BM_DdssPut(benchmark::State& state) {
  const auto model = kModels[static_cast<std::size_t>(state.range(0))];
  const auto bytes = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    const double us = put_latency_us(model, bytes);
    state.SetIterationTime(us * 1e-6);
  }
  state.SetLabel(std::string(ddss::to_string(model)) + "/" +
                 std::to_string(bytes) + "B");
}
BENCHMARK(BM_DdssPut)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5}, {1, 4096, 65536}})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

// Observed mode (`--trace-out` / `--metrics-out`): one deterministic
// engine running allocate / put / get / release under every coherence
// model, so the trace shows how each model decomposes into verbs ops.
// Two invocations produce byte-identical files.
int run_observed(const trace::ObserveOptions& opts) {
  sim::Engine eng;
  trace::ObservedRun observed(eng, opts);
  fabric::Fabric fab(eng, fabric::FabricParams{},
                     {.num_nodes = 2, .mem_per_node = 4u << 20});
  verbs::Network net(fab);
  ddss::Ddss substrate(net);
  substrate.start();
  eng.spawn([](ddss::Ddss& d) -> sim::Task<void> {
    auto client = d.client(0);
    constexpr std::size_t kBytes = 4096;
    std::vector<std::byte> value(kBytes, std::byte{0x5A});
    std::vector<std::byte> buf(kBytes);
    for (const auto model : kModels) {
      auto alloc = co_await client.allocate(kBytes, model,
                                            ddss::Placement::kRemote);
      for (int i = 0; i < 4; ++i) {
        co_await client.put(alloc, value);
        co_await client.get(alloc, buf);
      }
      co_await client.release(alloc);
    }
  }(substrate));
  eng.run();
  return 0;
}

// Harnessed scenarios (docs/BENCHMARKS.md): 4 KB puts under every
// coherence model, each put a trace::Request so the verbs decomposition
// (lock, version bump, data write) is attributed per model.
int run_harness(const bench::HarnessOptions& opts) {
  bench::Harness h("ddss_latency", opts);
  for (const auto model : kModels) {
    h.run(std::string("put/") + ddss::to_string(model),
          [model](bench::Scenario& s) {
            auto& eng = s.engine();
            fabric::Fabric fab(eng, fabric::FabricParams{},
                               {.num_nodes = 2, .mem_per_node = 4u << 20});
            verbs::Network net(fab);
            ddss::Ddss substrate(net);
            substrate.start();
            eng.spawn([](sim::Engine& e, ddss::Ddss& d, ddss::Coherence m,
                         bench::Scenario& out) -> sim::Task<void> {
              auto client = d.client(0);
              constexpr std::size_t kBytes = 4096;
              auto alloc = co_await client.allocate(
                  kBytes, m, ddss::Placement::kRemote);
              std::vector<std::byte> value(kBytes, std::byte{0x5A});
              co_await client.put(alloc, value);  // warm-up
              constexpr int kIters = 20;
              for (int i = 0; i < kIters; ++i) {
                const auto t0 = e.now();
                {
                  trace::Request req("ddss.put", 0,
                                     static_cast<std::uint64_t>(i));
                  co_await client.put(alloc, value);
                }
                out.latency_ns(static_cast<double>(e.now() - t0));
              }
            }(eng, substrate, model, s));
            eng.run();
            s.metric("put_bytes", 4096);
          });
  }
  // Batched sweep (--batch N picks the max depth): K puts to K distinct
  // same-home allocations ride one put_many call — one doorbell, pipelined
  // wire, one coalesced completion.  Latency samples are amortized per op
  // (batch time / K) so the sweep compares directly against the serial
  // put/<model> scenarios above.  Only doorbell-batchable models sweep;
  // lock-based models fall back to serial inside put_many.
  for (const auto model : {ddss::Coherence::kNull, ddss::Coherence::kRead,
                           ddss::Coherence::kVersion}) {
    for (const std::size_t depth : bench::batch_sweep(opts.batch)) {
      h.run(std::string("put/") + ddss::to_string(model) + "/batch=" +
                std::to_string(depth),
            [model, depth](bench::Scenario& s) {
              s.batch_depth(depth);
              auto& eng = s.engine();
              fabric::Fabric fab(eng, fabric::FabricParams{},
                                 {.num_nodes = 2, .mem_per_node = 4u << 20});
              verbs::Network net(fab);
              ddss::Ddss substrate(net);
              substrate.start();
              eng.spawn([](sim::Engine& e, ddss::Ddss& d, ddss::Coherence m,
                           std::size_t k,
                           bench::Scenario& out) -> sim::Task<void> {
                auto client = d.client(0);
                constexpr std::size_t kBytes = 4096;
                std::vector<ddss::Allocation> allocs;
                allocs.reserve(k);
                for (std::size_t j = 0; j < k; ++j) {
                  allocs.push_back(co_await client.allocate(
                      kBytes, m, ddss::Placement::kRemote));
                }
                std::vector<std::byte> value(kBytes, std::byte{0x5A});
                std::vector<ddss::Client::PutOp> ops;
                ops.reserve(k);
                for (const auto& a : allocs) ops.push_back({&a, value});
                co_await client.put_many(ops);  // warm-up
                constexpr int kIters = 20;
                for (int i = 0; i < kIters; ++i) {
                  const auto t0 = e.now();
                  {
                    trace::Request req("ddss.put_many", 0,
                                       static_cast<std::uint64_t>(i));
                    co_await client.put_many(ops);
                  }
                  const double per_op =
                      static_cast<double>(e.now() - t0) / static_cast<double>(k);
                  for (std::size_t j = 0; j < k; ++j) out.latency_ns(per_op);
                }
              }(eng, substrate, model, depth, s));
              eng.run();
              s.metric("put_bytes", 4096);
              s.metric("batch_depth", static_cast<double>(depth));
            });
    }
  }
  return h.finish();
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = bench::extract_harness_flags(argc, argv);
  if (flags.harness_mode()) return run_harness(flags);
  if (flags.observe_mode()) return run_observed(flags.observe("ddss_latency"));
  print_fig3a();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
