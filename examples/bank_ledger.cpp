// A distributed ledger: account balances live in DDSS shared state, and
// transfers from many nodes are serialized with N-CoSED locks (exclusive
// for transfers, shared for audits).  The invariant — total balance never
// changes — is checked by concurrent shared-mode audits and at the end.
//
//   $ ./examples/bank_ledger
#include <cstdio>

#include "common/rng.hpp"
#include "ddss/ddss.hpp"
#include "dlm/ncosed.hpp"
#include "verbs/wire.hpp"

using namespace dcs;

namespace {

constexpr std::size_t kAccounts = 8;
constexpr std::uint64_t kInitialBalance = 1000;
constexpr int kTransfersPerNode = 40;
constexpr dlm::LockId kLedgerLock = 1;

struct Ledger {
  ddss::Ddss& substrate;
  dlm::NcosedLockManager& locks;
  ddss::Allocation accounts;  // kAccounts x u64, null coherence (lock-guarded)

  sim::Task<std::uint64_t> read_balance(ddss::Client& client,
                                        std::size_t idx) {
    std::vector<std::byte> buf(8);
    // Offset reads via get_delta are not needed; read whole and slice.
    std::vector<std::byte> all(kAccounts * 8);
    co_await client.get(accounts, all);
    co_return verbs::load_u64(all, idx * 8);
  }
};

sim::Task<void> transfer_worker(Ledger& ledger, fabric::NodeId self,
                                std::uint64_t seed, int& done) {
  Rng rng(seed);
  auto client = ledger.substrate.client(self);
  for (int i = 0; i < kTransfersPerNode; ++i) {
    const auto from = rng.uniform(kAccounts);
    auto to = rng.uniform(kAccounts);
    if (to == from) to = (to + 1) % kAccounts;
    const std::uint64_t amount = rng.uniform(1, 50);

    co_await ledger.locks.lock_exclusive(self, kLedgerLock);
    std::vector<std::byte> all(kAccounts * 8);
    co_await client.get(ledger.accounts, all);
    const auto from_bal = verbs::load_u64(all, from * 8);
    if (from_bal >= amount) {
      verbs::store_u64(all, from * 8, from_bal - amount);
      verbs::store_u64(all, to * 8, verbs::load_u64(all, to * 8) + amount);
      co_await client.put(ledger.accounts, all);
    }
    co_await ledger.locks.unlock(self, kLedgerLock);
  }
  ++done;
}

sim::Task<void> auditor(Ledger& ledger, fabric::NodeId self, int rounds,
                        int& violations) {
  auto client = ledger.substrate.client(self);
  for (int r = 0; r < rounds; ++r) {
    co_await ledger.locks.lock_shared(self, kLedgerLock);
    std::vector<std::byte> all(kAccounts * 8);
    co_await client.get(ledger.accounts, all);
    std::uint64_t total = 0;
    for (std::size_t a = 0; a < kAccounts; ++a) {
      total += verbs::load_u64(all, a * 8);
    }
    co_await ledger.locks.unlock(self, kLedgerLock);
    if (total != kAccounts * kInitialBalance) ++violations;
    co_await ledger.substrate.engine().delay(microseconds(200));
  }
}

}  // namespace

int main() {
  sim::Engine eng;
  fabric::Fabric fab(eng, fabric::FabricParams{},
                     {.num_nodes = 6, .cores_per_node = 2});
  verbs::Network net(fab);
  ddss::Ddss substrate(net);
  substrate.start();
  dlm::NcosedLockManager locks(net, /*home=*/0);

  Ledger ledger{substrate, locks, {}};
  int workers_done = 0, violations = 0;

  eng.spawn([](Ledger& l, sim::Engine& e, int& done, int& bad)
                -> sim::Task<void> {
    auto client = l.substrate.client(0);
    l.accounts = co_await client.allocate(kAccounts * 8,
                                          ddss::Coherence::kNull);
    std::vector<std::byte> init(kAccounts * 8);
    for (std::size_t a = 0; a < kAccounts; ++a) {
      verbs::store_u64(init, a * 8, kInitialBalance);
    }
    co_await client.put(l.accounts, init);

    // 4 transfer nodes + 1 auditor, all concurrent.
    for (fabric::NodeId n = 1; n <= 4; ++n) {
      e.spawn(transfer_worker(l, n, 100 + n, done));
    }
    e.spawn(auditor(l, 5, 30, bad));
  }(ledger, eng, workers_done, violations));

  eng.run();

  // Final audit.
  std::uint64_t final_total = 0;
  eng.spawn([](Ledger& l, std::uint64_t& total) -> sim::Task<void> {
    auto client = l.substrate.client(0);
    std::vector<std::byte> all(kAccounts * 8);
    co_await client.get(l.accounts, all);
    for (std::size_t a = 0; a < kAccounts; ++a) {
      total += verbs::load_u64(all, a * 8);
      std::printf("  account %zu: %llu\n", a,
                  static_cast<unsigned long long>(verbs::load_u64(all, a * 8)));
    }
  }(ledger, final_total));
  eng.run();

  std::printf("\n%d transfer workers done, %d audit violations\n",
              workers_done, violations);
  std::printf("total balance: %llu (expected %llu) -> %s\n",
              static_cast<unsigned long long>(final_total),
              static_cast<unsigned long long>(kAccounts * kInitialBalance),
              final_total == kAccounts * kInitialBalance && violations == 0
                  ? "CONSISTENT"
                  : "CORRUPTED");
  std::printf("virtual time: %.2f ms\n", to_millis(eng.now()));
  return final_total == kAccounts * kInitialBalance ? 0 : 1;
}
