// A small content-serving site: clients replay a Zipf trace against a
// two-proxy web tier, once with plain per-proxy caching (AC) and once with
// the hybrid cooperative cache (HYBCC).  Prints throughput, latency, and
// hit-rate for both, showing what RDMA-based cache cooperation buys.
//
//   $ ./examples/coop_cache_site
#include <cstdio>

#include "cache/coop_cache.hpp"
#include "common/zipf.hpp"
#include "datacenter/clients.hpp"
#include "datacenter/webfarm.hpp"

using namespace dcs;

namespace {

struct SiteResult {
  double tps;
  double mean_latency_us;
  double hit_rate;
  std::uint64_t backend_requests;
};

SiteResult run_site(cache::Scheme scheme) {
  sim::Engine eng;
  // Nodes: 0 client, 1-2 proxies, 3-4 app-tier donors, 5 backend.
  fabric::Fabric fab(eng, fabric::FabricParams{},
                     {.num_nodes = 6, .cores_per_node = 2});
  verbs::Network net(fab);
  sockets::TcpNetwork tcp(fab);

  datacenter::DocumentStore store({.num_docs = 600, .doc_bytes = 16384});
  datacenter::BackendService backend(tcp, store, {5});
  backend.start();

  cache::CoopCacheService coop(net, backend, store, scheme, {1, 2}, {3, 4},
                               {.capacity_per_node = 3u << 20});
  datacenter::WebFarm farm(tcp, {1, 2}, coop.handler());
  farm.start();

  datacenter::ClientFarm clients(tcp, {0}, farm.proxies(), store,
                                 {.sessions = 8});
  ZipfTrace trace(store.num_docs(), 0.8, 2500, 1234);
  eng.spawn(clients.run({trace.requests().begin(), trace.requests().end()}));
  eng.run();

  auto& stats = const_cast<datacenter::RunStats&>(clients.stats());
  DCS_CHECK(stats.integrity_failures == 0);
  return SiteResult{stats.tps(), stats.latency_us.mean(),
                    coop.stats().hit_rate(), backend.requests_served()};
}

}  // namespace

int main() {
  std::printf("Serving 2500 Zipf(0.8) requests over 600 x 16 KB documents,\n"
              "two proxies with 3 MB cache each (working set 9.4 MB)...\n\n");
  const auto ac = run_site(cache::Scheme::kAC);
  const auto hybcc = run_site(cache::Scheme::kHYBCC);

  std::printf("%-22s %12s %12s\n", "", "Apache cache", "HYBCC");
  std::printf("%-22s %12.0f %12.0f\n", "throughput (TPS)", ac.tps, hybcc.tps);
  std::printf("%-22s %12.0f %12.0f\n", "mean latency (us)",
              ac.mean_latency_us, hybcc.mean_latency_us);
  std::printf("%-22s %11.1f%% %11.1f%%\n", "cache hit rate",
              100 * ac.hit_rate, 100 * hybcc.hit_rate);
  std::printf("%-22s %12llu %12llu\n", "backend fetches",
              static_cast<unsigned long long>(ac.backend_requests),
              static_cast<unsigned long long>(hybcc.backend_requests));
  std::printf("\ncooperation gain: %.1f%% more throughput, %.0f%% fewer "
              "backend trips\n",
              100.0 * (hybcc.tps / ac.tps - 1.0),
              100.0 * (1.0 - static_cast<double>(hybcc.backend_requests) /
                                 static_cast<double>(ac.backend_requests)));
  return 0;
}
