// Quickstart: build a simulated RDMA cluster, exercise the verbs layer,
// share state through DDSS, and take distributed locks with N-CoSED.
//
//   $ ./examples/quickstart
//
// Everything runs in virtual time on a deterministic discrete-event engine;
// re-running produces identical output.
#include <cstdio>

#include "ddss/ddss.hpp"
#include "dlm/ncosed.hpp"
#include "verbs/verbs.hpp"

using namespace dcs;

namespace {

sim::Task<void> tour(sim::Engine& eng, verbs::Network& net,
                     ddss::Ddss& substrate, dlm::NcosedLockManager& locks) {
  // --- 1. raw verbs: one-sided RDMA between nodes -----------------------
  auto region = net.hca(1).allocate_region(64);
  const std::vector<std::byte> greeting = {std::byte{'h'}, std::byte{'i'}};
  auto t0 = eng.now();
  co_await net.hca(0).write(region, 0, greeting);
  std::printf("[%7.2f us] node 0 RDMA-wrote %zu bytes into node 1's memory\n",
              to_micros(eng.now()), greeting.size());

  std::vector<std::byte> readback(2);
  co_await net.hca(2).read(region, 0, readback);
  std::printf("[%7.2f us] node 2 RDMA-read them back: '%c%c'"
              " (target CPU busy: %llu ns)\n",
              to_micros(eng.now()),
              static_cast<char>(readback[0]), static_cast<char>(readback[1]),
              static_cast<unsigned long long>(
                  net.fabric().node(1).busy_ns()));

  const auto old = co_await net.hca(0).fetch_and_add(region, 8, 5);
  std::printf("[%7.2f us] remote fetch-and-add: old=%llu (now 5)\n",
              to_micros(eng.now()), static_cast<unsigned long long>(old));

  // --- 2. DDSS: coherent shared state -----------------------------------
  auto writer = substrate.client(0);
  auto reader = substrate.client(3);
  auto shared = co_await writer.allocate(128, ddss::Coherence::kVersion,
                                         ddss::Placement::kRemote);
  std::printf("[%7.2f us] DDSS allocated 128 B (version coherence) on node "
              "%u\n", to_micros(eng.now()), shared.home);

  std::vector<std::byte> value(128, std::byte{0x42});
  co_await writer.put(shared, value);
  std::vector<std::byte> seen(128);
  const auto version = co_await reader.get_versioned(shared, seen);
  std::printf("[%7.2f us] node 3 get_versioned -> version %llu, bytes ok=%s\n",
              to_micros(eng.now()),
              static_cast<unsigned long long>(version),
              seen == value ? "yes" : "NO");

  // --- 3. distributed locking -------------------------------------------
  t0 = eng.now();
  co_await locks.lock_exclusive(0, 7);
  std::printf("[%7.2f us] node 0 took exclusive lock 7 in %.2f us "
              "(one CAS, zero messages)\n",
              to_micros(eng.now()), to_micros(eng.now() - t0));
  co_await locks.unlock(0, 7);

  t0 = eng.now();
  co_await locks.lock_shared(1, 7);
  co_await locks.lock_shared(2, 7);
  std::printf("[%7.2f us] nodes 1 and 2 hold lock 7 SHARED concurrently "
              "(each one FAA)\n", to_micros(eng.now()));
  co_await locks.unlock(1, 7);
  co_await locks.unlock(2, 7);

  std::printf("\nquickstart complete at virtual time %.2f us\n",
              to_micros(eng.now()));
}

}  // namespace

int main() {
  sim::Engine eng;
  fabric::Fabric fab(eng, fabric::FabricParams::infiniband_ddr(),
                     {.num_nodes = 4, .cores_per_node = 2});
  verbs::Network net(fab);
  ddss::Ddss substrate(net);
  substrate.start();
  dlm::NcosedLockManager locks(net, /*home=*/3);

  eng.spawn(tour(eng, net, substrate, locks));
  eng.run();
  return 0;
}
