// Query processing over the data-center: runs the same scan workload
// through traditional (sockets) STORM and STORM-DDSS, showing where the
// one-sided control plane wins and how the gap evolves with scale.
//
//   $ ./examples/storm_queries
#include <cstdio>

#include "storm/storm.hpp"

using namespace dcs;

namespace {

storm::QueryResult run_one(storm::ControlPlane plane, std::uint64_t records) {
  sim::Engine eng;
  fabric::Fabric fab(eng, fabric::FabricParams{},
                     {.num_nodes = 6, .cores_per_node = 2});
  verbs::Network net(fab);
  sockets::TcpNetwork tcp(fab);
  storm::StormCluster cluster(net, tcp, plane, 0, 1, {2, 3, 4, 5});
  eng.spawn(cluster.start());
  eng.run();
  storm::QueryResult result;
  eng.spawn([](storm::StormCluster& c, std::uint64_t n,
               storm::QueryResult& out) -> sim::Task<void> {
    out = co_await c.run_query(n);
  }(cluster, records, result));
  eng.run();
  return result;
}

}  // namespace

int main() {
  std::printf("select-query over records partitioned across 4 data nodes\n");
  std::printf("(2%% selectivity, per-batch shared-state progress updates)\n\n");
  std::printf("%12s %14s %16s %12s %14s\n", "records", "STORM (ms)",
              "STORM-DDSS (ms)", "speedup", "control ops");
  for (const std::uint64_t records :
       {2000ull, 20000ull, 200000ull, 2000000ull}) {
    const auto trad = run_one(storm::ControlPlane::kSockets, records);
    const auto ddss = run_one(storm::ControlPlane::kDdss, records);
    std::printf("%12llu %14.2f %16.2f %11.2fx %14llu\n",
                static_cast<unsigned long long>(records),
                to_millis(trad.elapsed), to_millis(ddss.elapsed),
                static_cast<double>(trad.elapsed) /
                    static_cast<double>(ddss.elapsed),
                static_cast<unsigned long long>(ddss.control_ops));
  }
  std::printf(
      "\nthe data plane is identical; the gap is purely the shared-state\n"
      "path: TCP round trips to a metadata daemon vs one-sided DDSS puts.\n");
  return 0;
}
