// An operations dashboard: four app servers run a bursty workload while a
// front-end monitors them with kernel-assisted RDMA reads (zero target
// CPU) and a fine-grained reconfiguration manager shifts nodes between two
// hosted sites as demand moves.  Prints a timeline of load, the
// reconfiguration event log, the registry snapshot the front-end scraped
// over RDMA from an app server's telemetry page, and the critical-path
// attribution of the site jobs that ran during the window.
//
//   $ ./examples/ops_dashboard
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "monitor/telemetry.hpp"
#include "reconfig/reconfig.hpp"
#include "trace/critical_path.hpp"

using namespace dcs;

namespace {

constexpr SimNanos kRunFor = seconds(3);

sim::Task<void> site_traffic(sim::Engine& eng, fabric::Fabric& fab,
                             reconfig::ReconfigService& svc,
                             std::uint32_t site, SimNanos busy_from,
                             SimNanos busy_until) {
  Rng rng(site + 99);
  while (eng.now() < kRunFor) {
    const bool busy = eng.now() >= busy_from && eng.now() < busy_until;
    const int burst = busy ? 3 : 1;
    for (int i = 0; i < burst; ++i) {
      const auto server = co_await svc.pick_server(site);
      eng.spawn([](fabric::Fabric& f, fabric::NodeId n,
                   std::uint32_t s) -> sim::Task<void> {
        // Each job is a request root, so the attribution report below can
        // split its latency into run-queue wait vs CPU.
        trace::Request req("site.job", n, s);
        co_await f.node(n).execute(microseconds(700));
      }(fab, server, site));
    }
    co_await eng.delay(microseconds(busy ? 900 : 2500));
  }
}

sim::Task<void> dashboard(sim::Engine& eng, fabric::Fabric& fab,
                          monitor::ResourceMonitor& mon,
                          reconfig::ReconfigService& svc) {
  std::printf("  time | node1 node2 node3 node4 | site of each node\n");
  std::printf("  -----+-------------------------+------------------\n");
  while (eng.now() < kRunFor) {
    co_await eng.delay(milliseconds(250));
    std::printf("%5.0fms |", to_millis(eng.now()));
    for (fabric::NodeId n = 1; n <= 4; ++n) {
      const auto sample = co_await mon.query(n);
      std::printf(" %5llu",
                  static_cast<unsigned long long>(sample.stats.runnable));
    }
    std::printf(" |");
    for (fabric::NodeId n = 1; n <= 4; ++n) {
      std::printf("  %c", 'A' + static_cast<char>(svc.site_of(n)));
    }
    std::printf("\n");
  }
  (void)fab;
}

}  // namespace

int main() {
  sim::Engine eng;
  trace::Tracer tracer(eng);
  trace::Registry::global().reset();
  tracer.install();
  fabric::Fabric fab(eng, fabric::FabricParams{},
                     {.num_nodes = 5, .cores_per_node = 1});
  verbs::Network net(fab);
  sockets::TcpNetwork tcp(fab);

  monitor::ResourceMonitor mon(net, tcp, 0, {1, 2, 3, 4},
                               monitor::MonScheme::kRdmaSync);
  mon.start();
  reconfig::ReconfigService svc(
      net, mon, 0, {1, 2, 3, 4}, /*sites=*/2,
      {.monitor_interval = milliseconds(50), .history_window = 2});
  svc.start();

  // Telemetry dogfood: every app server mirrors the metrics registry into
  // a registered page; the front-end RDMA-reads it (zero target CPU).
  std::vector<std::unique_ptr<monitor::TelemetryExporter>> exporters;
  monitor::TelemetryScraper scraper(net, 0);
  for (fabric::NodeId n = 1; n <= 4; ++n) {
    exporters.push_back(std::make_unique<monitor::TelemetryExporter>(
        net, n, monitor::TelemetrySchema::standard(), milliseconds(100)));
    scraper.attach(*exporters.back());
    exporters.back()->start();
  }

  std::printf("two hosted sites (A, B) on four app servers; site A spikes "
              "between 500 ms and 2000 ms\n\n");
  eng.spawn(site_traffic(eng, fab, svc, 0, milliseconds(500),
                         milliseconds(2000)));
  eng.spawn(site_traffic(eng, fab, svc, 1, kRunFor, kRunFor));  // steady
  eng.spawn(dashboard(eng, fab, mon, svc));

  // Final RDMA scrape of node 1's telemetry page just before the window
  // closes, to show below.
  monitor::TelemetrySnapshot snap;
  SimNanos target_busy_delta = 0;
  eng.spawn([](sim::Engine& e, fabric::Fabric& f,
               monitor::TelemetryScraper& sc, monitor::TelemetrySnapshot& out,
               SimNanos& busy_delta) -> sim::Task<void> {
    co_await e.delay(kRunFor - milliseconds(1));
    const auto busy0 = f.node(1).busy_ns();
    out = co_await sc.scrape(1);
    busy_delta = f.node(1).busy_ns() - busy0;
  }(eng, fab, scraper, snap, target_busy_delta));

  eng.run_until(kRunFor + milliseconds(1));

  std::printf("\nreconfiguration events:\n");
  for (const auto& ev : svc.events()) {
    std::printf("  %6.0f ms: node %u moved %c -> %c\n", to_millis(ev.at),
                ev.node, 'A' + static_cast<char>(ev.from_site),
                'A' + static_cast<char>(ev.to_site));
  }
  if (svc.events().empty()) std::printf("  (none)\n");

  std::printf("\ntelemetry page of node 1, RDMA-scraped at %.0f ms "
              "(publish seq %llu, target CPU during scrape: %llu ns):\n",
              to_millis(snap.scraped_at),
              static_cast<unsigned long long>(snap.seq),
              static_cast<unsigned long long>(target_busy_delta));
  for (const auto& [name, value] : snap.values) {
    if (value == 0.0) continue;  // keep the dashboard short
    std::printf("  %-26s %12.0f\n", name.c_str(), value);
  }

  tracer.uninstall();
  std::printf("\ncritical-path attribution of the run's site jobs:\n");
  trace::CriticalPath(tracer).write_report(std::cout);

  std::printf("\nmonitoring cost on app servers: zero target-CPU "
              "(%llu one-sided reads issued by the front-end)\n",
              static_cast<unsigned long long>(net.hca(0).one_sided_ops()));
  return 0;
}
