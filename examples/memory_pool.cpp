// Pooling idle cluster memory: the global aggregator stripes one logical
// buffer across four donor nodes (bandwidth + capacity aggregation), and
// the remote block cache turns donated memory into a file-cache extension
// that replaces disk reads with RDMA reads.
//
//   $ ./examples/memory_pool
#include <cstdio>

#include "cache/remote_pager.hpp"
#include "common/zipf.hpp"
#include "ddss/aggregator.hpp"

using namespace dcs;

namespace {

sim::Task<void> aggregator_demo(sim::Engine& eng, verbs::Network& net) {
  std::printf("-- global memory aggregator --\n");
  ddss::GlobalAggregator agg(net, {1, 2, 3, 4}, {.stripe_bytes = 64 * 1024});
  std::printf("donors: 4 nodes, %zu MB free in the pool\n",
              agg.free_bytes() >> 20);

  auto extent = co_await agg.allocate(4u << 20, /*striped=*/true);
  std::printf("allocated a 4 MB logical extent in %zu striped pieces\n",
              extent.pieces.size());

  std::vector<std::byte> buf(4u << 20, std::byte{0x3C});
  auto t0 = eng.now();
  co_await agg.write(0, extent, 0, buf);
  const auto write_us = to_micros(eng.now() - t0);
  t0 = eng.now();
  co_await agg.read(0, extent, 0, buf);
  const auto read_us = to_micros(eng.now() - t0);
  std::printf("4 MB write: %.0f us (%.2f GB/s), read: %.0f us (%.2f GB/s)\n",
              write_us, 4.0 / 1024 / (write_us * 1e-6),
              read_us, 4.0 / 1024 / (read_us * 1e-6));
  co_await agg.release(std::move(extent));
  std::printf("released; pool free again: %zu MB\n\n", agg.free_bytes() >> 20);
}

sim::Task<void> pager_demo(sim::Engine& eng, verbs::Network& net) {
  std::printf("-- remote-memory file cache --\n");
  cache::RemoteBlockCache pager(net, 0, {1, 2},
                                {.block_bytes = 16384,
                                 .local_capacity = 256 * 1024,
                                 .remote_capacity_per_server = 2u << 20});
  Rng rng(7);
  ZipfSampler zipf(120, 0.8);  // 1.9 MB working set, 256 KB local cache
  const auto t0 = eng.now();
  for (int i = 0; i < 800; ++i) {
    (void)co_await pager.read_block(zipf.sample(rng));
  }
  const auto& s = pager.stats();
  std::printf("800 Zipf(0.8) block reads over a 1.9 MB working set\n");
  std::printf("  local hits : %5llu\n",
              static_cast<unsigned long long>(s.local_hits));
  std::printf("  remote hits: %5llu   (~10-50 us each, donor CPU idle)\n",
              static_cast<unsigned long long>(s.remote_hits));
  std::printf("  disk reads : %5llu   (~4-5 ms each)\n",
              static_cast<unsigned long long>(s.disk_reads));
  std::printf("  mean read  : %.0f us\n",
              to_micros(eng.now() - t0) / 800.0);
}

}  // namespace

int main() {
  sim::Engine eng;
  fabric::Fabric fab(eng, fabric::FabricParams::infiniband_ddr(),
                     {.num_nodes = 5, .cores_per_node = 2,
                      .mem_per_node = 8u << 20});
  verbs::Network net(fab);
  eng.spawn([](sim::Engine& e, verbs::Network& n) -> sim::Task<void> {
    co_await aggregator_demo(e, n);
    co_await pager_demo(e, n);
  }(eng, net));
  eng.run();
  return 0;
}
